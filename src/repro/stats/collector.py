"""Streaming collection of completion records into batch statistics.

The collector implements the paper's output-analysis protocol: a warmup
prefix is discarded, then completions are divided into ``batches``
consecutive batches of ``batch_size`` samples each.  Every per-batch
quantity needed by the tables is accumulated on the fly (counts per
agent, waiting-time moments, batch wall-clock durations); raw waiting
samples are retained per batch only when ``keep_samples`` is set (needed
for CDFs and the overlap experiment of §4.3).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bus.records import CompletionRecord
from repro.errors import StatisticsError

__all__ = ["CompletionCollector", "BatchStats", "service_order_deviation"]


def service_order_deviation(reference: List[int], observed: List[int]) -> float:
    """Fraction of positions where two grant sequences disagree.

    Compares the common prefix of a fault-free reference order and an
    observed (possibly perturbed) order, position by position — the
    robustness grid's measure of how far line faults push service away
    from the protocol's intended schedule.  Two empty sequences deviate
    by 0.0.
    """
    length = min(len(reference), len(observed))
    if length == 0:
        return 0.0
    mismatches = sum(
        1 for ref, obs in zip(reference[:length], observed[:length]) if ref != obs
    )
    return mismatches / length


# ``slots`` lands in dataclasses at 3.10; on 3.9 the class simply keeps
# its __dict__ — same behaviour, slightly slower field access.
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**_SLOTS)
class BatchStats:
    """Accumulated statistics of one batch.

    ``waiting`` refers to the paper's W: request issue to transaction
    completion.  Slotted (3.10+): the collector's hot path touches
    seven of these fields per completion.
    """

    index: int
    count: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    sum_waiting: float = 0.0
    sum_waiting_sq: float = 0.0
    sum_queueing: float = 0.0
    agent_counts: Dict[int, int] = field(default_factory=dict)
    samples: Optional[List[float]] = None

    @property
    def duration(self) -> float:
        """Wall-clock span of the batch (simulated time)."""
        return self.end_time - self.start_time

    @property
    def mean_waiting(self) -> float:
        """Mean W within this batch."""
        if self.count == 0:
            raise StatisticsError(f"batch {self.index} is empty")
        return self.sum_waiting / self.count

    @property
    def std_waiting(self) -> float:
        """Standard deviation of W within this batch."""
        if self.count == 0:
            raise StatisticsError(f"batch {self.index} is empty")
        mean = self.mean_waiting
        variance = max(0.0, self.sum_waiting_sq / self.count - mean * mean)
        return variance**0.5

    @property
    def mean_queueing(self) -> float:
        """Mean issue-to-grant delay within this batch."""
        if self.count == 0:
            raise StatisticsError(f"batch {self.index} is empty")
        return self.sum_queueing / self.count

    def throughput(self) -> float:
        """Completions per unit time in this batch (= bus utilisation
        when the transaction time is the unit of time)."""
        if self.duration <= 0.0:
            raise StatisticsError(f"batch {self.index} has no duration")
        return self.count / self.duration

    def agent_throughput(self, agent_id: int) -> float:
        """One agent's completions per unit time in this batch."""
        if self.duration <= 0.0:
            raise StatisticsError(f"batch {self.index} has no duration")
        return self.agent_counts.get(agent_id, 0) / self.duration


class CompletionCollector:
    """Sink for :class:`~repro.bus.records.CompletionRecord`.

    Parameters
    ----------
    batches:
        Number of batches (the paper uses 10).
    batch_size:
        Completions per batch (the paper uses 8000).
    warmup:
        Completions discarded before batching starts, to wash out the
        empty-and-idle initial transient.
    keep_samples:
        Retain each batch's raw waiting-time samples.
    """

    def __init__(
        self,
        batches: int = 10,
        batch_size: int = 8000,
        warmup: int = 1000,
        keep_samples: bool = False,
        keep_order: bool = False,
        keep_records: bool = False,
    ) -> None:
        if batches < 2:
            raise StatisticsError(f"need >= 2 batches for batch means, got {batches}")
        if batch_size < 1:
            raise StatisticsError(f"batch_size must be >= 1, got {batch_size}")
        if warmup < 0:
            raise StatisticsError(f"warmup must be >= 0, got {warmup}")
        self.batches = batches
        self.batch_size = batch_size
        self.warmup = warmup
        self.keep_samples = keep_samples
        self.keep_order = keep_order
        #: Agent ids in completion order (every completion, including
        #: warmup) when ``keep_order`` is set — the grant *sequence*, used
        #: by the protocol-equivalence tests.
        self.completion_order: List[int] = []
        self.keep_records = keep_records
        #: Full completion records (every completion, including warmup)
        #: when ``keep_records`` is set.
        self.records: List[CompletionRecord] = []
        self.needed = warmup + batches * batch_size
        self.total_recorded = 0
        self.batch_stats: List[BatchStats] = []
        self._current: Optional[BatchStats] = None
        self._last_boundary_time = 0.0
        #: Total per-agent completions after warmup (all batches).
        self.agent_totals: Dict[int, int] = {}
        #: Arbitration anomalies seen by the watchdog, per kind
        #: ("no-winner" / "duplicate-winner").
        self.anomalies: Dict[str, int] = {}
        #: Simulated-time spans from first anomaly of an episode to the
        #: next clean grant, one entry per recovered episode.
        self.recovery_latencies: List[float] = []
        #: Arbitrations whose winner was silently changed by a line
        #: fault (service-order deviation without an anomaly).
        self.deviations = 0
        #: Set when the watchdog exhausted its retry budget.
        self.permanent_failure = False

    def satisfied(self) -> bool:
        """Stop rule for the simulation run."""
        return self.total_recorded >= self.needed

    def record(self, record: CompletionRecord) -> None:
        """Accumulate one completion."""
        self.record_completion(
            record.agent_id,
            record.issue_time,
            record.grant_time,
            record.completion_time,
            record.priority,
            _record=record,
        )

    def record_completion(
        self,
        agent_id: int,
        issue_time: float,
        grant_time: float,
        completion_time: float,
        priority: bool = False,
        _record: Optional[CompletionRecord] = None,
    ) -> None:
        """Accumulate one completion from its bare timing fields.

        The batch engine's hot path: identical arithmetic to
        :meth:`record` without allocating a :class:`CompletionRecord`
        unless the collector actually retains records.
        """
        index = self.total_recorded
        self.total_recorded = index + 1
        if self.keep_order:
            self.completion_order.append(agent_id)
        if self.keep_records:
            if _record is None:
                _record = CompletionRecord(
                    agent_id=agent_id,
                    issue_time=issue_time,
                    grant_time=grant_time,
                    completion_time=completion_time,
                    priority=priority,
                )
            self.records.append(_record)
        if index < self.warmup:
            self._last_boundary_time = completion_time
            return
        if index >= self.needed:
            return  # events already queued past the stop rule
        batch = self._current
        if batch is None or batch.count == self.batch_size:
            # Completions arrive sequentially, so a boundary is exactly
            # "the current batch is full" — the division only runs once
            # per batch, not once per completion.
            self._open_batch((index - self.warmup) // self.batch_size)
            batch = self._current
        assert batch is not None
        waiting = completion_time - issue_time
        batch.count += 1
        batch.sum_waiting += waiting
        batch.sum_waiting_sq += waiting * waiting
        batch.sum_queueing += grant_time - issue_time
        counts = batch.agent_counts
        counts[agent_id] = counts.get(agent_id, 0) + 1
        totals = self.agent_totals
        totals[agent_id] = totals.get(agent_id, 0) + 1
        if batch.samples is not None:
            batch.samples.append(waiting)
        batch.end_time = completion_time
        if batch.count == self.batch_size:
            self._last_boundary_time = completion_time

    # -- watchdog / fault-injection records -----------------------------------

    def record_anomaly(self, kind: str) -> None:
        """Count one anomalous arbitration outcome of the given kind."""
        self.anomalies[kind] = self.anomalies.get(kind, 0) + 1

    def record_recovery(self, latency: float) -> None:
        """Record one closed anomaly episode's recovery latency."""
        self.recovery_latencies.append(latency)

    def record_deviation(self) -> None:
        """Count one silently-deviated arbitration winner."""
        self.deviations += 1

    def record_permanent_failure(self) -> None:
        """The watchdog gave up: the bus is permanently failed."""
        self.permanent_failure = True

    def _open_batch(self, batch_index: int) -> None:
        batch = BatchStats(
            index=batch_index,
            start_time=self._last_boundary_time,
            samples=[] if self.keep_samples else None,
        )
        self.batch_stats.append(batch)
        self._current = batch

    # -- post-run access ------------------------------------------------------

    def completed_batches(self) -> List[BatchStats]:
        """Batches that reached their full size."""
        return [batch for batch in self.batch_stats if batch.count == self.batch_size]

    def all_samples(self) -> List[float]:
        """Every retained waiting-time sample, in completion order."""
        if not self.keep_samples:
            raise StatisticsError(
                "collector was built with keep_samples=False; no samples retained"
            )
        samples: List[float] = []
        for batch in self.batch_stats:
            if batch.samples:
                samples.extend(batch.samples)
        return samples

"""Protocol registry: every arbiter as a declarative :class:`ProtocolSpec`.

The paper's whole evaluation is a grid of independent ``(scenario,
protocol, settings)`` cells, so protocols are *data*: each entry declares
its name, a factory with one uniform calling convention
``factory(num_agents, max_outstanding)``, and its capabilities —

- whether it supports ``r > 1`` outstanding requests per agent (only the
  FCFS arbiters do, §3.2);
- the extra bus lines it consumes beyond the k arbitration lines and the
  shared request line (RR priority bit / low-request line / a-incr);
- the arbitration-number width as a function of N (and r);
- the paper section that introduces it;
- whether it participates in common-random-number protocol comparisons
  (the central oracles exist to check winner sequences, not to be
  compared for throughput).

:func:`make_arbiter` validates a scenario's needs against these declared
capabilities at configuration time, so an RR run over an ``r = 4``
open-loop scenario fails with a precise error before the simulation
starts instead of a :class:`~repro.errors.ProtocolError` deep inside it.

Ad-hoc protocols (tests, notebooks) can still be registered by assigning
a bare callable to :data:`PROTOCOLS`; it is wrapped into a spec with
conservative capabilities.
"""

from __future__ import annotations

import difflib
import inspect
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, MutableMapping, Optional, Tuple

from repro.baselines.assured_access import BatchingAssuredAccess, FuturebusAssuredAccess
from repro.baselines.central import CentralFCFS, CentralRoundRobin
from repro.baselines.fixed_priority import FixedPriorityArbiter
from repro.baselines.rotating import RotatingPriorityRR
from repro.baselines.ticket import TicketFCFS
from repro.core.adaptive import AdaptiveArbiter
from repro.core.base import Arbiter, identity_bits
from repro.core.fcfs import DistributedFCFS
from repro.core.hybrid import HybridArbiter
from repro.core.round_robin import DistributedRoundRobin
from repro.errors import ConfigurationError
from repro.faults.arbiters import FaultyWinnerRegisterRR, GlitchableFCFS
from repro.faults.plan import BUS_LEVEL_FAULTS, FaultKind

__all__ = [
    "ProtocolSpec",
    "ProtocolRegistry",
    "PROTOCOLS",
    "register",
    "unregister",
    "get_spec",
    "protocol_names",
    "make_arbiter",
]

#: Width of the effective arbitration number, in bits, as a function of
#: the agent count (and, where the protocol supports it, of r).
WidthFn = Callable[..., int]


def _width_static(num_agents: int, max_outstanding: int = 1) -> int:
    """k bits: the bare static identity (central oracles, rotating, ticket)."""
    return identity_bits(num_agents)


def _width_static_plus_priority(num_agents: int, max_outstanding: int = 1) -> int:
    """k + 1 bits: priority bit over the static identity."""
    return identity_bits(num_agents) + 1


def _width_rr(num_agents: int, max_outstanding: int = 1) -> int:
    """k + 2 bits: priority bit + RR bit + static identity (impl 1 layout)."""
    return identity_bits(num_agents) + 2


def _width_fcfs(num_agents: int, max_outstanding: int = 1) -> int:
    """2k + 1 (+ ceil(log2 r)) bits: priority + waiting counter + identity."""
    k = identity_bits(num_agents)
    extra = math.ceil(math.log2(max_outstanding)) if max_outstanding > 1 else 0
    return 2 * k + 1 + extra


def _width_hybrid(num_agents: int, max_outstanding: int = 1) -> int:
    """2k + 1 bits: age counter + RR bit + static identity."""
    return 2 * identity_bits(num_agents) + 1


def _width_adaptive(num_agents: int, max_outstanding: int = 1) -> int:
    """2k bits: age counter + static identity (no RR bit)."""
    return 2 * identity_bits(num_agents)


@dataclass(frozen=True)
class ProtocolSpec:
    """Declarative description of one registered arbitration protocol.

    Attributes
    ----------
    name:
        Registry key, as used by experiments, the CLI and the cache.
    factory:
        ``factory(num_agents, max_outstanding) -> Arbiter``.  Every
        registered factory sees the same two arguments; protocols that
        do not support ``r > 1`` simply never receive it above 1 because
        :meth:`build` validates first.
    summary:
        One-line human description (CLI listing, docs table).
    paper_section:
        Where the paper (or cited prior work) introduces the protocol.
    supports_outstanding:
        Whether the protocol handles ``r > 1`` outstanding requests per
        agent (§3.2: only the FCFS arbiters do).
    extra_lines:
        Declared extra bus lines beyond the k arbitration lines and the
        shared request line; ``None`` for ad-hoc specs (probe the
        instance instead).
    number_width:
        Declared arbitration-number width ``f(N[, r])`` in bits; ``None``
        for ad-hoc specs.
    common_random_numbers:
        Whether the protocol participates in common-random-number
        comparisons (same seed, identical arrivals).  False for the
        central oracles, which exist to verify winner sequences.
    injectable_faults:
        The :class:`~repro.faults.plan.FaultKind` classes the protocol
        can meaningfully absorb: bus-level line faults for everything
        that arbitrates on shared wired-OR lines, plus protocol-specific
        faults (dropped winner broadcasts where a winner register is
        replicated, counter upsets where waiting-time counters exist).
        Empty for ad-hoc specs: fault plans are refused at config time.
    supports_batch:
        Whether the lockstep batch engine (:mod:`repro.engine.batch`)
        has an exact kernel for the protocol.  Only the paper's core
        closed-loop protocols qualify; everything else transparently
        falls back to the event-driven engine.
    supports_batch_faults:
        Whether that batch kernel also exposes the exact per-agent
        arbitration numbers the fault injector perturbs, extending the
        kernel's verified domain to bus-level fault plans (line
        glitches, stuck lines, agent dropout) plus watchdog recovery.
        Never true without ``supports_batch``.
    """

    name: str
    factory: Callable[[int, int], Arbiter]
    summary: str = ""
    paper_section: str = ""
    supports_outstanding: bool = False
    extra_lines: Optional[int] = None
    number_width: Optional[WidthFn] = None
    common_random_numbers: bool = True
    injectable_faults: FrozenSet[FaultKind] = field(default_factory=frozenset)
    supports_batch: bool = False
    supports_batch_faults: bool = False

    def check_outstanding(self, max_outstanding: int) -> None:
        """Reject a per-agent capacity the protocol cannot serve."""
        if max_outstanding < 1:
            raise ConfigurationError(
                f"max_outstanding must be >= 1, got {max_outstanding}"
            )
        if max_outstanding > 1 and not self.supports_outstanding:
            raise ConfigurationError(
                f"protocol {self.name!r} supports one outstanding request per "
                f"agent, but the scenario needs r={max_outstanding}; only the "
                f"FCFS arbiters extend to r > 1 (§3.2) — use 'fcfs' or "
                f"'fcfs-aincr', or set max_outstanding=1"
            )

    def check_faults(self, kinds: Iterable[FaultKind]) -> None:
        """Reject fault kinds the protocol cannot meaningfully absorb."""
        unsupported = sorted(
            kind.value for kind in set(kinds) - self.injectable_faults
        )
        if unsupported:
            supported = sorted(kind.value for kind in self.injectable_faults)
            raise ConfigurationError(
                f"protocol {self.name!r} does not support fault injection of "
                f"{unsupported}; it supports {supported or 'no fault kinds'}"
            )

    def build(self, num_agents: int, max_outstanding: int = 1) -> Arbiter:
        """Instantiate the protocol after validating the scenario's needs."""
        self.check_outstanding(max_outstanding)
        return self.factory(num_agents, max_outstanding)

    @classmethod
    def from_callable(cls, name: str, factory: Callable) -> "ProtocolSpec":
        """Wrap a bare ``callable(num_agents[, r])`` as an ad-hoc spec.

        Single-argument callables are adapted to the uniform two-argument
        convention and declared incapable of ``r > 1``; callables that
        accept a second argument are trusted to honour it.
        """
        try:
            params = inspect.signature(factory).parameters
            takes_r = len(params) >= 2 or any(
                p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD) for p in params.values()
            )
        except (TypeError, ValueError):
            takes_r = True
        if takes_r:
            wrapped = factory
        else:
            def wrapped(num_agents: int, max_outstanding: int = 1) -> Arbiter:
                return factory(num_agents)
        return cls(
            name=name,
            factory=wrapped,
            summary="ad-hoc protocol (registered at runtime)",
            supports_outstanding=takes_r,
        )


#: The registry proper: name -> spec, in registration order.
_SPECS: Dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec, overwrite: bool = False) -> ProtocolSpec:
    """Add ``spec`` to the registry; returns it for chaining."""
    if not overwrite and spec.name in _SPECS:
        raise ConfigurationError(f"protocol {spec.name!r} is already registered")
    _SPECS[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registered protocol (ad-hoc test entries, mostly)."""
    try:
        del _SPECS[name]
    except KeyError:
        raise ConfigurationError(f"unknown protocol {name!r}") from None


def get_spec(name: str) -> ProtocolSpec:
    """The spec registered under ``name``; precise error when unknown."""
    try:
        return _SPECS[name]
    except KeyError:
        hint = ""
        close = difflib.get_close_matches(name, _SPECS, n=1)
        if close:
            hint = f" (did you mean {close[0]!r}?)"
        raise ConfigurationError(
            f"unknown protocol {name!r}{hint}; choose one of {sorted(_SPECS)}"
        ) from None


def protocol_names() -> Tuple[str, ...]:
    """All registered protocol names, sorted."""
    return tuple(sorted(_SPECS))


def make_arbiter(protocol: str, num_agents: int, max_outstanding: int = 1) -> Arbiter:
    """Instantiate a registered protocol for ``num_agents`` agents.

    Scenario needs are validated against the spec's declared capabilities
    here, at configuration time — an unknown name or an ``r > 1``
    scenario against a single-outstanding protocol raises
    :class:`~repro.errors.ConfigurationError` before any event runs.
    """
    return get_spec(protocol).build(num_agents, max_outstanding)


class ProtocolRegistry(MutableMapping):
    """Backward-compatible ``name -> factory`` view of the registry.

    Reading yields each spec's uniform two-argument factory; assigning a
    bare callable registers an ad-hoc :class:`ProtocolSpec`
    (single-argument callables are adapted); deleting unregisters.  The
    historical ``PROTOCOLS`` dict-of-lambdas API keeps working on top of
    the spec registry.
    """

    def __getitem__(self, name: str) -> Callable[[int, int], Arbiter]:
        return get_spec(name).factory

    def __setitem__(self, name: str, factory: Callable) -> None:
        if isinstance(factory, ProtocolSpec):
            spec = factory
            if spec.name != name:
                raise ConfigurationError(
                    f"spec name {spec.name!r} does not match registry key {name!r}"
                )
        else:
            spec = ProtocolSpec.from_callable(name, factory)
        register(spec, overwrite=True)

    def __delitem__(self, name: str) -> None:
        unregister(name)

    def __iter__(self) -> Iterator[str]:
        return iter(_SPECS)

    def __len__(self) -> int:
        return len(_SPECS)

    def spec(self, name: str) -> ProtocolSpec:
        """The full :class:`ProtocolSpec` behind a registry key."""
        return get_spec(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProtocolRegistry({sorted(_SPECS)})"


#: Mapping view used by experiments, the CLI and tests.
PROTOCOLS: ProtocolRegistry = ProtocolRegistry()


# ---------------------------------------------------------------------------
# Built-in protocols.  Factories all take (num_agents, max_outstanding);
# protocols without r-support never see max_outstanding > 1 (build()
# validates first), so they ignore the argument.
# ---------------------------------------------------------------------------

#: Protocols whose replicated winner register is exposed for injection.
_BROADCAST_FAULTS = BUS_LEVEL_FAULTS | {FaultKind.DROPPED_BROADCAST}
#: Central/ticket oracles arbitrate off-bus: only dropout reaches them.
_DROPOUT_ONLY = frozenset({FaultKind.AGENT_DROPOUT})

_BUILTIN_SPECS: Tuple[ProtocolSpec, ...] = (
    # the paper's contributions
    ProtocolSpec(
        name="rr",
        factory=lambda n, r: DistributedRoundRobin(n, implementation=1),
        summary="distributed round-robin, RR-priority-bit implementation",
        paper_section="§3.1",
        extra_lines=1,
        number_width=_width_rr,
        injectable_faults=BUS_LEVEL_FAULTS,
        supports_batch=True,
        supports_batch_faults=True,
    ),
    ProtocolSpec(
        name="rr-impl2",
        factory=lambda n, r: DistributedRoundRobin(n, implementation=2),
        summary="distributed round-robin, low-request-line implementation",
        paper_section="§3.1",
        extra_lines=1,
        number_width=_width_rr,
        injectable_faults=BUS_LEVEL_FAULTS,
        supports_batch=True,
        supports_batch_faults=True,
    ),
    ProtocolSpec(
        name="rr-impl3",
        factory=lambda n, r: DistributedRoundRobin(n, implementation=3),
        summary="distributed round-robin, no extra line (occasional 2nd pass)",
        paper_section="§3.1",
        extra_lines=0,
        number_width=_width_rr,
        injectable_faults=BUS_LEVEL_FAULTS,
        supports_batch=True,
        supports_batch_faults=True,
    ),
    # the frozen-pointer amendment studied in extension Table E4
    ProtocolSpec(
        name="rr-frozen",
        factory=lambda n, r: DistributedRoundRobin(n, record_priority_winners=False),
        summary="round-robin with the pointer frozen across urgent wins",
        paper_section="§3.1",
        extra_lines=1,
        number_width=_width_rr,
        injectable_faults=BUS_LEVEL_FAULTS,
    ),
    ProtocolSpec(
        name="fcfs",
        factory=lambda n, r: DistributedFCFS(n, strategy=1, max_outstanding=r),
        summary="distributed FCFS, lost-arbitration counting",
        paper_section="§3.2",
        supports_outstanding=True,
        extra_lines=0,
        number_width=_width_fcfs,
        injectable_faults=BUS_LEVEL_FAULTS,
        supports_batch=True,
        supports_batch_faults=True,
    ),
    ProtocolSpec(
        name="fcfs-aincr",
        factory=lambda n, r: DistributedFCFS(n, strategy=2, max_outstanding=r),
        summary="distributed FCFS, a-incr arrival-tick counting",
        paper_section="§3.2",
        supports_outstanding=True,
        extra_lines=1,
        number_width=_width_fcfs,
        injectable_faults=BUS_LEVEL_FAULTS,
        supports_batch=True,
        supports_batch_faults=True,
    ),
    # §5 future-work extensions
    ProtocolSpec(
        name="hybrid",
        factory=lambda n, r: HybridArbiter(n),
        summary="FCFS across arrival ticks, RR within a coincident cohort",
        paper_section="§5",
        extra_lines=2,
        number_width=_width_hybrid,
        injectable_faults=BUS_LEVEL_FAULTS,
    ),
    ProtocolSpec(
        name="adaptive",
        factory=lambda n, r: AdaptiveArbiter(n),
        summary="schedules RR under coincident arrivals, FCFS otherwise",
        paper_section="§5",
        extra_lines=2,
        number_width=_width_adaptive,
        injectable_faults=BUS_LEVEL_FAULTS,
    ),
    # baselines
    ProtocolSpec(
        name="fixed",
        factory=lambda n, r: FixedPriorityArbiter(n),
        summary="raw parallel contention: highest identity always wins",
        paper_section="§2.1",
        extra_lines=0,
        number_width=_width_static_plus_priority,
        injectable_faults=BUS_LEVEL_FAULTS,
        supports_batch=True,
        supports_batch_faults=True,
    ),
    ProtocolSpec(
        name="aap1",
        factory=lambda n, r: BatchingAssuredAccess(n),
        summary="assured access by batching (Fastbus/NuBus/Multibus II)",
        paper_section="§2.2",
        extra_lines=0,
        number_width=_width_static_plus_priority,
        injectable_faults=BUS_LEVEL_FAULTS,
    ),
    ProtocolSpec(
        name="aap2",
        factory=lambda n, r: FuturebusAssuredAccess(n),
        summary="assured access by inhibition until release (Futurebus)",
        paper_section="§2.2",
        extra_lines=0,
        number_width=_width_static_plus_priority,
        injectable_faults=BUS_LEVEL_FAULTS,
    ),
    ProtocolSpec(
        name="central-rr",
        factory=lambda n, r: CentralRoundRobin(n),
        summary="central round-robin oracle (defines the true RR schedule)",
        paper_section="oracle",
        extra_lines=0,
        number_width=_width_static,
        common_random_numbers=False,
        injectable_faults=_DROPOUT_ONLY,
    ),
    ProtocolSpec(
        name="central-fcfs",
        factory=lambda n, r: CentralFCFS(n),
        summary="central FCFS oracle (defines the true FCFS schedule)",
        paper_section="oracle",
        extra_lines=0,
        number_width=_width_static,
        common_random_numbers=False,
        injectable_faults=_DROPOUT_ONLY,
    ),
    ProtocolSpec(
        name="rotating-rr",
        factory=lambda n, r: RotatingPriorityRR(n),
        summary="RR via rotated arbitration numbers (rejected prior art)",
        paper_section="§2.2",
        extra_lines=0,
        number_width=_width_static,
        injectable_faults=_BROADCAST_FAULTS,
    ),
    ProtocolSpec(
        name="ticket-fcfs",
        factory=lambda n, r: TicketFCFS(n),
        summary="central ticket-dispenser FCFS [ShAh81]",
        paper_section="[ShAh81]",
        extra_lines=0,
        number_width=_width_static,
        injectable_faults=_DROPOUT_ONLY,
    ),
    # fault-observable variants (repro.faults.arbiters)
    ProtocolSpec(
        name="rr-faulty-register",
        factory=lambda n, r: FaultyWinnerRegisterRR(n),
        summary="RR impl 1 with per-agent winner registers (fault target)",
        paper_section="§3.1",
        extra_lines=1,
        number_width=_width_rr,
        injectable_faults=_BROADCAST_FAULTS,
    ),
    ProtocolSpec(
        name="fcfs-glitchable",
        factory=lambda n, r: GlitchableFCFS(n, max_outstanding=r),
        summary="distributed FCFS with corruptible waiting counters",
        paper_section="§3.2",
        supports_outstanding=True,
        extra_lines=0,
        number_width=_width_fcfs,
        injectable_faults=BUS_LEVEL_FAULTS | {FaultKind.COUNTER_UPSET},
    ),
)

for _spec in _BUILTIN_SPECS:
    register(_spec)
del _spec

"""First-class protocol registry.

Every arbitration protocol the library knows is registered here as a
:class:`~repro.protocols.registry.ProtocolSpec`: a declarative record of
its factory and its capabilities (outstanding-request support, extra bus
lines, arbitration-number width, paper section).  The experiment grid,
the CLI and the documentation all derive their protocol vocabulary from
this one registry.
"""

from repro.protocols.registry import (
    PROTOCOLS,
    ProtocolRegistry,
    ProtocolSpec,
    get_spec,
    make_arbiter,
    protocol_names,
    register,
)

__all__ = [
    "ProtocolSpec",
    "ProtocolRegistry",
    "PROTOCOLS",
    "register",
    "get_spec",
    "protocol_names",
    "make_arbiter",
]

"""Run orchestration: request → plan → outcome.

The session layer is the single place engine selection, lane packing,
cache lookup and graceful degradation are decided.  Every entry point —
:func:`~repro.experiments.runner.run_simulation`, the
:class:`~repro.experiments.sweep.SweepExecutor` backends, the
robustness grid, all experiment tables and the CLI — routes through it:

- :class:`RunRequest` (:mod:`repro.session.request`): one requested
  simulation — scenario, protocol, settings, tag — with a
  JSON-round-trippable wire format;
- :func:`plan_runs` (:mod:`repro.session.planner`): resolves requests
  into a :class:`RunPlan` — engine choice via
  :func:`repro.engine.batch.batch_capable`, lane packing, epoch-6
  cache lookup;
- :func:`execute_plan` (:mod:`repro.session.execute`): runs the plan
  against injected backends and returns :class:`RunOutcome`\\ s
  carrying the :class:`~repro.stats.summary.RunResult`, cache
  provenance, the runtime batch→event fallback flag
  (:mod:`repro.session.fallback`) and :class:`CellFailure`
  degradation;
- :class:`Session` (:mod:`repro.session.session`): the synchronous
  submit/gather facade with cross-request dedup, the seam the future
  service front end wraps.

The layering rule: this package never imports
:mod:`repro.experiments` at module level (the experiments package
imports session right back); those references resolve lazily at call
time.
"""

from repro.session.execute import execute_plan
from repro.session.fallback import batch_fallback_message, warn_batch_fallback
from repro.session.outcome import CellFailure, RunOutcome, SessionStats
from repro.session.planner import (
    ENGINES,
    PlannedRun,
    RunPlan,
    normalize_engine,
    plan_runs,
)
from repro.session.request import RunRequest
from repro.session.session import Session
from repro.session.single import run_cell, run_cell_event

__all__ = [
    "RunRequest",
    "RunOutcome",
    "CellFailure",
    "SessionStats",
    "PlannedRun",
    "RunPlan",
    "plan_runs",
    "execute_plan",
    "run_cell",
    "run_cell_event",
    "Session",
    "ENGINES",
    "normalize_engine",
    "batch_fallback_message",
    "warn_batch_fallback",
]

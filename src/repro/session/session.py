"""The synchronous session facade: submit requests, gather outcomes.

A :class:`Session` is the seam the future asyncio service front end
(ROADMAP item 2) will wrap: callers :meth:`~Session.submit`
:class:`~repro.session.request.RunRequest`\\ s, then :meth:`~Session.gather`
the batch — one planned, lane-packed, cached, pool-backed sweep — and
receive :class:`~repro.session.outcome.RunOutcome`\\ s in submission
order.

On top of the executor's own cache replay, a session deduplicates
*within a gather*: identical requests (same epoch-6 content hash) run
once and every duplicate receives the same result with
``route="dedup"`` — the "many concurrent clients, mostly cache hits"
shape of the service, working even with no cache directory configured.

A session also satisfies the executor duck type the experiment grids
accept (``run_requests`` / ``simulate``), so one session can back the
tables, the robustness grid and ad-hoc runs alike.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.session.control import RunControl
from repro.session.outcome import ROUTE_DEDUP, RunOutcome, SessionStats
from repro.session.request import RunRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.cache import ResultCache
    from repro.experiments.runner import SimulationSettings
    from repro.experiments.sweep import SweepExecutor
    from repro.stats.summary import RunResult
    from repro.workload.scenarios import ScenarioSpec

__all__ = ["Session"]


class Session:
    """Synchronous run orchestration over one sweep executor.

    Parameters
    ----------
    jobs:
        Worker processes for the executor backend (``0`` = one per
        core; default ``$REPRO_JOBS`` or serial).
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache` shared
        by every gather.
    engine:
        Optional engine override applied to every request (validated;
        ``None`` respects each request's own declaration).
    executor:
        An existing :class:`~repro.experiments.sweep.SweepExecutor` to
        reuse (its jobs/cache/engine then win); built from the other
        arguments when omitted.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional["ResultCache"] = None,
        engine: Optional[str] = None,
        executor: Optional["SweepExecutor"] = None,
    ) -> None:
        if executor is None:
            from repro.experiments.sweep import SweepExecutor

            executor = SweepExecutor(jobs=jobs, cache=cache, engine=engine)
        self.executor = executor
        self._pending: List[RunRequest] = []

    @property
    def stats(self) -> SessionStats:
        """The backing executor's accounting (shared, cumulative)."""
        return self.executor.stats

    # -- submit / gather ------------------------------------------------------

    def submit(
        self,
        scenario: "ScenarioSpec",
        protocol: str,
        settings: Optional["SimulationSettings"] = None,
        tag: Optional[str] = None,
    ) -> RunRequest:
        """Queue one run for the next :meth:`gather`; returns its request."""
        request = RunRequest(scenario, protocol, settings, tag=tag)
        self._pending.append(request)
        return request

    def submit_request(self, request: RunRequest) -> RunRequest:
        """Queue an already-built request (e.g. one off the wire)."""
        self._pending.append(request)
        return request

    def gather(self, control: Optional[RunControl] = None) -> List[RunOutcome]:
        """Run everything submitted since the last gather, in order."""
        requests, self._pending = self._pending, []
        return self.run_requests(requests, control=control)

    # -- executor duck type ---------------------------------------------------

    def run_requests(
        self,
        requests: Sequence[RunRequest],
        control: Optional[RunControl] = None,
    ) -> List[RunOutcome]:
        """One deduplicated sweep over ``requests``; outcomes in order.

        Identical requests (same epoch-6 content hash) execute once;
        duplicates replay the first occurrence's outcome with
        ``route="dedup"`` and count in ``stats.deduplicated``.

        ``control`` (a :class:`~repro.session.control.RunControl`)
        installs cooperative cancellation/deadline checks for the whole
        gather; see :func:`repro.session.execute.execute_plan`.
        """
        engine = self.executor.engine
        resolved = [request.resolved(engine) for request in requests]
        first_by_key: dict = {}
        unique: List[RunRequest] = []
        slots: List[int] = []
        duplicate: List[bool] = []
        for request in resolved:
            key = request.cache_key()
            slot = first_by_key.get(key)
            duplicate.append(slot is not None)
            if slot is None:
                first_by_key[key] = len(unique)
                slots.append(len(unique))
                unique.append(request)
            else:
                slots.append(slot)
        if control is not None:
            outcomes = self.executor.run_requests(unique, control=control)
        else:
            # Keep the bare duck-type call so minimal executors (tests,
            # adapters) need not grow the keyword until they need it.
            outcomes = self.executor.run_requests(unique)
        gathered: List[RunOutcome] = []
        for request, slot, is_dup in zip(resolved, slots, duplicate):
            outcome = outcomes[slot]
            if not is_dup:
                gathered.append(outcome)
            else:
                self.stats.deduplicated += 1
                gathered.append(
                    RunOutcome(
                        request=request,
                        result=outcome.result,
                        route=ROUTE_DEDUP,
                        cache_key=outcome.cache_key,
                    )
                )
        return gathered

    def simulate(
        self,
        scenario: "ScenarioSpec",
        protocol: str,
        settings: Optional["SimulationSettings"] = None,
    ) -> "RunResult":
        """Single-run convenience: submit, gather, return the result."""
        request = RunRequest(scenario, protocol, settings)
        return self.run_requests([request])[0].result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(pending={len(self._pending)}, "
            f"executor={self.executor!r})"
        )

"""Execute a :class:`~repro.session.planner.RunPlan`.

:func:`execute_plan` is the single orchestration loop every entry point
shares — :func:`~repro.experiments.runner.run_simulation` (via the
single-cell plan), :class:`~repro.experiments.sweep.SweepExecutor` and
the :class:`~repro.session.session.Session` facade.  It replays cached
runs, packs the lane route into one lockstep super-batch, demotes a
lane pack that fails at runtime to the direct path (loudly — see
:mod:`repro.session.fallback`), hands the direct route to the supplied
backend (process pool, serial loop), writes fresh results back to the
cache, and accounts everything on a shared
:class:`~repro.session.outcome.SessionStats`.

Backends are injected as callables so this module stays free of
process-pool mechanics — and so ``SweepExecutor`` can keep resolving
``run_lanes``/``run_simulation`` through its own module globals (which
the differential and fault suites monkeypatch).
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.session.control import RunControl
from repro.session.fallback import warn_batch_fallback
from repro.session.outcome import (
    ROUTE_CACHE,
    ROUTE_DIRECT,
    ROUTE_LANES,
    RunOutcome,
    SessionStats,
)
from repro.session.planner import PlannedRun, RunPlan
from repro.session.request import RunRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.cache import ResultCache
    from repro.stats.summary import RunResult

__all__ = ["execute_plan"]

#: A lane backend: cells in, results in lane order.
LaneRunner = Callable[[Sequence[tuple]], Sequence["RunResult"]]
#: A per-cell backend: requests in, results in request order.
DirectRunner = Callable[[Sequence[RunRequest]], Sequence["RunResult"]]


def _default_lane_runner(cells: Sequence[tuple]) -> Sequence["RunResult"]:
    from repro.engine.batch import run_lanes

    return run_lanes(cells)


def _default_direct_runner(
    requests: Sequence[RunRequest],
    control: Optional[RunControl] = None,
) -> List["RunResult"]:
    """Serial per-cell execution against private scenario copies.

    The cell boundary is the cancellation point: with a ``control``
    installed, each cell re-checks the deadline/cancel flag before it
    starts, so an expired batch stops after the current cell instead of
    grinding through the remainder.
    """
    from repro.session.single import run_cell

    results = []
    for request in requests:
        if control is not None:
            control.check()
        scenario = copy.deepcopy(request.scenario)
        results.append(run_cell(scenario, request.protocol, request.settings))
    return results


def execute_plan(
    plan: RunPlan,
    cache: Optional["ResultCache"] = None,
    stats: Optional[SessionStats] = None,
    lane_runner: Optional[LaneRunner] = None,
    direct_runner: Optional[DirectRunner] = None,
    control: Optional[RunControl] = None,
) -> List[RunOutcome]:
    """Run every planned cell; outcomes in plan (= request) order.

    A lane pack that fails at runtime demotes its cells to the direct
    path with one ``RuntimeWarning`` and a ``fallback_cells`` tally
    (those cells were promised the batch engine; the direct path's
    retry/diagnostic machinery then reports real per-cell errors).
    Fresh results are written back to ``cache`` under their planned
    keys.  ``stats`` accumulates across calls when the caller owns it.

    ``control`` installs cooperative cancellation: it is checked before
    each execution stage (cache replay, the lane pack, the direct
    batch) and — when the default serial backend runs — between cells,
    raising :class:`~repro.errors.CancelledRunError` /
    :class:`~repro.errors.DeadlineExceededError` out of this function.
    Outcomes already produced are lost to the caller but fresh results
    executed before the trip are already in the cache; cancellation
    never leaves partial state behind.
    """
    stats = stats if stats is not None else SessionStats()
    lane_runner = lane_runner or _default_lane_runner
    if direct_runner is None:
        def direct_runner(requests: Sequence[RunRequest]) -> List["RunResult"]:
            return _default_direct_runner(requests, control)
    if control is not None:
        control.check()
    outcomes: List[Optional[RunOutcome]] = [None] * len(plan.runs)

    for run in plan.cached_runs:
        stats.cache_hits += 1
        outcomes[run.index] = RunOutcome(
            request=run.request,
            result=run.cached,
            route=ROUTE_CACHE,
            cache_key=run.key,
        )

    direct: List[Tuple[PlannedRun, bool]] = [
        (run, False) for run in plan.direct_runs
    ]
    lane_runs = plan.lane_runs
    if lane_runs:
        if control is not None:
            control.check()
        try:
            fresh = lane_runner([run.request.as_cell() for run in lane_runs])
        except Exception as exc:
            warn_batch_fallback(len(lane_runs), exc, stats)
            direct.extend((run, True) for run in lane_runs)
        else:
            stats.batch_groups += len({run.family for run in lane_runs})
            stats.batch_replications += len(lane_runs)
            stats.executed += len(lane_runs)
            for run, result in zip(lane_runs, fresh):
                if cache is not None and run.key is not None:
                    cache.put(run.key, result)
                outcomes[run.index] = RunOutcome(
                    request=run.request,
                    result=result,
                    route=ROUTE_LANES,
                    cache_key=run.key,
                    stored=cache is not None,
                )

    if direct:
        if control is not None:
            control.check()
        direct.sort(key=lambda entry: entry[0].index)
        fresh = direct_runner([run.request for run, _ in direct])
        for (run, demoted), result in zip(direct, fresh):
            if cache is not None and run.key is not None:
                cache.put(run.key, result)
            outcomes[run.index] = RunOutcome(
                request=run.request,
                result=result,
                route=ROUTE_DIRECT,
                cache_key=run.key,
                stored=cache is not None,
                fallback=demoted,
            )
        stats.executed += len(direct)
    return [outcome for outcome in outcomes if outcome is not None]

"""The per-cell execution path: engine dispatch plus the event body.

:func:`run_cell` is what
:func:`~repro.experiments.runner.run_simulation` delegates to, and what
the sweep backends invoke per cell: it dispatches ``engine="batch"``
cells inside the batch domain to
:func:`repro.engine.batch.run_simulation_batch`, degrades *runtime*
batch failures to the event engine through the one shared fallback
helper (:mod:`repro.session.fallback` — a ``RuntimeWarning`` plus the
:data:`stats` tally; statically out-of-domain cells fall through
silently, they were never promised the batch engine), and otherwise
runs :func:`run_cell_event`, the general event-driven simulation
assembled from the bus model, fault injector, watchdog, telemetry
sinks and completion collector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.bus.model import BusSystem
from repro.bus.watchdog import BusWatchdog
from repro.engine.batch import batch_capable, run_simulation_batch
from repro.faults.injector import FaultInjector
from repro.observability.metrics import MetricsRegistry
from repro.observability.sinks import EventSink, InMemorySink, JsonlSink, TeeSink
from repro.protocols.registry import get_spec, make_arbiter
from repro.session.fallback import warn_batch_fallback
from repro.session.outcome import SessionStats
from repro.stats.collector import CompletionCollector
from repro.stats.summary import RunResult
from repro.workload.scenarios import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.runner import SimulationSettings

__all__ = ["run_cell", "run_cell_event", "stats"]

#: Degradation accounting for the single-run path (sweeps tally on
#: their executor's own stats); ``stats.fallback_cells`` counts runs
#: that were promised the batch engine but degraded at runtime.
stats = SessionStats()


def run_cell(
    scenario: ScenarioSpec,
    protocol: str,
    settings: Optional["SimulationSettings"] = None,
) -> RunResult:
    """Run one cell: batch engine inside its domain, event otherwise."""
    if settings is None:
        from repro.experiments.runner import SimulationSettings

        settings = SimulationSettings()
    if settings.engine == "batch" and batch_capable(scenario, protocol, settings)[0]:
        try:
            return run_simulation_batch(scenario, protocol, settings)
        except Exception as exc:
            # The cell was promised the batch engine; degrade loudly so
            # a broken kernel cannot hide behind the event path.
            warn_batch_fallback(1, exc, stats)
    return run_cell_event(scenario, protocol, settings)


def run_cell_event(
    scenario: ScenarioSpec,
    protocol: str,
    settings: "SimulationSettings",
) -> RunResult:
    """The general event-driven simulation of one cell.

    The random streams depend only on ``settings.seed`` and the agent
    identities, so two protocols run with the same seed see *identical*
    arrival processes — the common-random-numbers discipline behind the
    paper's protocol comparisons.
    """
    needed_capacity = max(spec.max_outstanding for spec in scenario.agents)
    arbiter = make_arbiter(protocol, scenario.num_agents, needed_capacity)
    injector: Optional[FaultInjector] = None
    watchdog: Optional[BusWatchdog] = None
    if settings.fault_plan is not None and len(settings.fault_plan):
        # Validate the plan against the protocol's declared fault
        # capabilities now, before any event runs.
        get_spec(protocol).check_faults(settings.fault_plan.kinds())
        injector = FaultInjector(settings.fault_plan)
        watchdog = BusWatchdog(settings.watchdog)
    elif settings.watchdog is not None:
        watchdog = BusWatchdog(settings.watchdog)
    memory: Optional[InMemorySink] = None
    jsonl: Optional[JsonlSink] = None
    sink: Optional[EventSink] = None
    metrics: Optional[MetricsRegistry] = None
    if settings.telemetry is not None:
        sinks = []
        if settings.telemetry.events:
            memory = InMemorySink()
            sinks.append(memory)
        if settings.telemetry.jsonl_path is not None:
            jsonl = JsonlSink(settings.telemetry.jsonl_path)
            sinks.append(jsonl)
        if sinks:
            sink = sinks[0] if len(sinks) == 1 else TeeSink(*sinks)
        if settings.telemetry.metrics:
            metrics = MetricsRegistry()
    collector = CompletionCollector(
        batches=settings.batches,
        batch_size=settings.batch_size,
        warmup=settings.warmup,
        keep_samples=settings.keep_samples,
        keep_order=settings.keep_order,
        keep_records=settings.keep_records,
    )
    system = BusSystem(
        scenario=scenario,
        arbiter=arbiter,
        collector=collector,
        timing=settings.timing,
        seed=settings.seed,
        injector=injector,
        watchdog=watchdog,
        sink=sink,
        metrics=metrics,
    )
    try:
        system.run(max_events=settings.max_events)
    finally:
        if jsonl is not None:
            jsonl.close()
    return RunResult(
        scenario=scenario,
        protocol=protocol,
        collector=collector,
        utilization=system.utilization(),
        elapsed=system.simulator.now,
        seed=settings.seed,
        confidence=settings.confidence,
        failed=watchdog.gave_up if watchdog is not None else False,
        events=memory.events if memory is not None else None,
        metrics=metrics,
    )

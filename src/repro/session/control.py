"""Cooperative cancellation and deadlines for orchestrated runs.

A :class:`RunControl` is the session layer's cancellation token: the
caller that owns a batch of runs (the service's dispatcher enforcing a
job deadline, an interactive front end aborting a sweep) hands one to
:func:`~repro.session.execute.execute_plan`, which consults it at every
stage boundary — before replaying cache hits, before launching a lane
pack, and between cells of the serial direct path.  Tripping the
control raises :class:`~repro.errors.CancelledRunError` (or its
deadline subclass :class:`~repro.errors.DeadlineExceededError`) out of
the execution loop; work already completed stays completed (and
cached), work not yet started never starts.

Cancellation is *cooperative* by design: a simulation cell is a pure
deterministic function and is never torn down mid-flight — the grain of
cancellation is the cell, which keeps the shared result cache free of
partial states.  Process-pool backends add their own preemption on top
(a pool future that has not started can be cancelled outright); this
control is the in-process half of that contract.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import CancelledRunError, DeadlineExceededError

__all__ = ["RunControl"]


class RunControl:
    """A cancellation token with an optional monotonic deadline.

    Parameters
    ----------
    deadline_at:
        Absolute :func:`time.monotonic` instant past which
        :meth:`check` raises :class:`DeadlineExceededError`;
        ``None`` = no deadline.
    clock:
        Injectable clock (tests pin it to step deterministically).
    """

    def __init__(self, deadline_at: Optional[float] = None, clock=time.monotonic) -> None:
        self.deadline_at = deadline_at
        self._clock = clock
        self._cancelled = False
        self._reason: Optional[str] = None

    @classmethod
    def after(cls, seconds: float, clock=time.monotonic) -> "RunControl":
        """A control whose deadline is ``seconds`` from now."""
        return cls(deadline_at=clock() + seconds, clock=clock)

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the control; every later :meth:`check` raises."""
        self._cancelled = True
        self._reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return self.deadline_at is not None and self._clock() >= self.deadline_at

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline, or ``None`` when unbounded."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - self._clock()

    def check(self) -> None:
        """Raise if the run should stop; the session's cancellation point.

        :class:`DeadlineExceededError` wins over a plain cancel so the
        caller's diagnostics name the sharper cause.
        """
        if self.expired:
            raise DeadlineExceededError(
                f"run deadline expired {-self.remaining():.3f}s ago"
            )
        if self._cancelled:
            raise CancelledRunError(self._reason or "cancelled")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "live"
        return f"RunControl({state}, deadline_at={self.deadline_at})"

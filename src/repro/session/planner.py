"""Resolve requests into an executable plan: engine, route, cache.

:func:`plan_runs` is the single place orchestration decisions are made.
For every :class:`~repro.session.request.RunRequest` it

- resolves defaults and applies an optional engine override (which
  never changes cache keys — the engine selector is not part of a
  cell's identity, epoch 6);
- consults the content-addressed
  :class:`~repro.experiments.cache.ResultCache`, when one is given;
- classifies the remaining runs by route: batch-capable
  ``engine="batch"`` cells without JSONL telemetry become lanes of one
  lockstep super-batch (:func:`repro.engine.batch.run_lanes` packs
  them however heterogeneous); everything else flows to the per-cell
  direct path (which may still use the batch engine for one cell —
  JSONL telemetry is only excluded from *lane packs*, where several
  lanes could contend for one trace file).

The resulting :class:`RunPlan` is pure data; executing it is
:func:`repro.session.execute.execute_plan`'s job, so backends (process
pools, serial loops) stay out of the decision layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.engine.batch import batch_capable, kernel_family
from repro.errors import ConfigurationError
from repro.session.outcome import ROUTE_CACHE, ROUTE_DIRECT, ROUTE_LANES
from repro.session.request import RunRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.cache import ResultCache
    from repro.stats.summary import RunResult

__all__ = ["PlannedRun", "RunPlan", "plan_runs", "normalize_engine", "ENGINES"]

#: The execution engines a settings object (or an override) may name.
ENGINES: Tuple[str, ...] = ("event", "batch")


def normalize_engine(engine: Optional[str], allow_none: bool = True) -> Optional[str]:
    """Validate an engine selector; the one place the vocabulary lives.

    ``None`` (allowed by default) means "respect each cell's own
    declaration".  Anything outside :data:`ENGINES` raises
    :class:`~repro.errors.ConfigurationError` with a uniform message.
    """
    if engine is None:
        if allow_none:
            return None
        raise ConfigurationError("an engine is required; choose 'event' or 'batch'")
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose 'event' or 'batch'"
        )
    return engine


@dataclass(frozen=True)
class PlannedRun:
    """One request's resolved execution decision."""

    #: Position in the planned batch (results are returned in this order).
    index: int
    #: The resolved request (defaults filled, engine override applied).
    request: RunRequest
    #: ``"cache"``, ``"lanes"`` or ``"direct"`` (see the module docstring).
    route: str
    #: The epoch-6 content hash, when a cache was consulted.
    key: Optional[str] = None
    #: The replayed result, for ``route == "cache"``.
    cached: Optional["RunResult"] = None
    #: The lockstep kernel family, for ``route == "lanes"``.
    family: Optional[str] = None


@dataclass(frozen=True)
class RunPlan:
    """The executable form of one batch of requests."""

    runs: Tuple[PlannedRun, ...]

    def by_route(self, route: str) -> List[PlannedRun]:
        return [run for run in self.runs if run.route == route]

    @property
    def cached_runs(self) -> List[PlannedRun]:
        return self.by_route(ROUTE_CACHE)

    @property
    def lane_runs(self) -> List[PlannedRun]:
        return self.by_route(ROUTE_LANES)

    @property
    def direct_runs(self) -> List[PlannedRun]:
        return self.by_route(ROUTE_DIRECT)


def _lane_eligible(request: RunRequest) -> bool:
    settings = request.settings
    telemetry = settings.telemetry
    if settings.engine != "batch":
        return False
    if telemetry is not None and telemetry.jsonl_path is not None:
        return False
    return batch_capable(request.scenario, request.protocol, settings)[0]


def plan_runs(
    requests: Sequence[RunRequest],
    cache: Optional["ResultCache"] = None,
    engine: Optional[str] = None,
) -> RunPlan:
    """Resolve a batch of requests into a :class:`RunPlan`.

    Requests are planned in order; the plan's indices are positions in
    ``requests``.  ``engine`` (validated against :data:`ENGINES`)
    overrides every request's own declaration; ``None`` respects them.
    """
    engine = normalize_engine(engine)
    runs: List[PlannedRun] = []
    for index, request in enumerate(requests):
        resolved = request.resolved(engine)
        key: Optional[str] = None
        if cache is not None:
            key = resolved.cache_key()
            hit = cache.get(key)
            if hit is not None:
                runs.append(
                    PlannedRun(index, resolved, ROUTE_CACHE, key=key, cached=hit)
                )
                continue
        if _lane_eligible(resolved):
            runs.append(
                PlannedRun(
                    index,
                    resolved,
                    ROUTE_LANES,
                    key=key,
                    family=kernel_family(resolved.protocol),
                )
            )
        else:
            runs.append(PlannedRun(index, resolved, ROUTE_DIRECT, key=key))
    return RunPlan(runs=tuple(runs))

"""What one orchestrated run produced: result, provenance, degradation.

A :class:`RunOutcome` is the uniform answer to "what happened to this
:class:`~repro.session.request.RunRequest`?".  It always carries the
:class:`~repro.stats.summary.RunResult` (when the run succeeded), says
*how* the result was obtained — replayed from the content-addressed
cache, executed as a lane of the lockstep batch engine, or run through
the per-cell path — and records graceful degradation: the
runtime batch→event fallback flag and, for a cell whose retry failed
too, its :class:`CellFailure` diagnostics.

:class:`SessionStats` is the execution accounting every orchestration
entry point shares; :class:`~repro.experiments.sweep.SweepExecutor`
exposes it as ``stats`` (its historical ``SweepStats`` name remains an
alias).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.observability.metrics import MetricsRegistry
    from repro.session.request import RunRequest
    from repro.stats.summary import RunResult

__all__ = ["CellFailure", "SessionStats", "RunOutcome"]

#: How an outcome's result was obtained.
ROUTE_CACHE = "cache"
ROUTE_LANES = "lanes"
ROUTE_DIRECT = "direct"
ROUTE_DEDUP = "dedup"


@dataclass(frozen=True)
class CellFailure:
    """Diagnostics for one run that failed even after a retry.

    Attributes
    ----------
    index:
        Position of the run within the executed batch.
    tag:
        The run's caller-supplied label, if any.
    protocol:
        The run's protocol name.
    scenario:
        The run's scenario name.
    error:
        ``TypeName: message`` of the final (retry) failure.
    first_error:
        ``TypeName: message`` of the original failure that triggered
        the retry.
    """

    index: int
    tag: Optional[str]
    protocol: str
    scenario: str
    error: str
    first_error: str

    def __str__(self) -> str:
        label = self.tag if self.tag is not None else f"cell {self.index}"
        return (
            f"{label} ({self.protocol} on {self.scenario}): {self.error} "
            f"(first attempt: {self.first_error})"
        )


@dataclass
class SessionStats:
    """Execution accounting for one orchestrator, across all its runs."""

    executed: int = 0
    cache_hits: int = 0
    parallel_batches: int = 0
    serial_batches: int = 0
    #: Cells re-run after their first attempt raised.
    retries: int = 0
    #: Per-cell diagnostics for cells whose retry failed too.
    failures: List[CellFailure] = field(default_factory=list)
    #: Lockstep kernel-family groups executed by the lane-packed batch
    #: engine, and the lanes (cells) they covered.
    batch_groups: int = 0
    batch_replications: int = 0
    #: Batch-capable cells that *silently degraded* to the per-cell
    #: event path because the lane pack failed at runtime.  Statically
    #: out-of-domain cells (no kernel, JSONL telemetry, event cells) are
    #: not counted — they were never promised the batch engine.  The
    #: fault-free differential suite asserts this stays zero.
    fallback_cells: int = 0
    #: Requests answered by another identical request of the same gather
    #: (the :class:`~repro.session.session.Session` dedup path; sweeps
    #: never dedup, their grids are already unique).
    deduplicated: int = 0

    def snapshot(self) -> "SessionStats":
        return SessionStats(
            self.executed,
            self.cache_hits,
            self.parallel_batches,
            self.serial_batches,
            self.retries,
            list(self.failures),
            self.batch_groups,
            self.batch_replications,
            self.fallback_cells,
            self.deduplicated,
        )


@dataclass(frozen=True)
class RunOutcome:
    """One request's uniform answer: result plus provenance.

    Attributes
    ----------
    request:
        The resolved request (engine overrides already applied), so the
        outcome is self-describing.
    result:
        The run's :class:`~repro.stats.summary.RunResult`; ``None``
        only when the run failed terminally (then ``failure`` says why
        — the orchestration entry points raise before returning such
        outcomes, so callers normally never observe ``None``).
    route:
        How the result was obtained: ``"cache"`` (replayed from the
        content-addressed store), ``"lanes"`` (a lane of one lockstep
        super-batch), ``"direct"`` (the per-cell path — which may still
        use the batch engine for a single cell), or ``"dedup"``
        (answered by an identical request of the same gather).
    cache_key:
        The request's epoch-6 content hash, when a cache was consulted
        (or dedup needed an identity); ``None`` otherwise.
    stored:
        True when this outcome executed fresh and was written back to
        the cache.
    fallback:
        True when the run was promised the batch engine but degraded to
        the event path at runtime (tallied in
        :attr:`SessionStats.fallback_cells`).
    failure:
        Terminal :class:`CellFailure` diagnostics, if any.
    """

    request: "RunRequest"
    result: Optional["RunResult"]
    route: str
    cache_key: Optional[str] = None
    stored: bool = False
    fallback: bool = False
    failure: Optional[CellFailure] = None

    @property
    def cached(self) -> bool:
        """True when the result was replayed from the cache."""
        return self.route == ROUTE_CACHE

    @property
    def events(self):
        """The run's retained arbitration events (telemetry), if any."""
        return self.result.events if self.result is not None else None

    @property
    def metrics(self) -> Optional["MetricsRegistry"]:
        """The run's metrics registry (telemetry), if any."""
        return self.result.metrics if self.result is not None else None

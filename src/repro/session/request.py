"""The declarative unit of orchestration: one requested simulation.

A :class:`RunRequest` is everything needed to (re)produce one run —
scenario, protocol, settings (including telemetry, fault plan, watchdog
and engine preference) plus a free-form tag — and is JSON-round-trippable
so it can cross a process or wire boundary intact (the future
arbitration-as-a-service front end speaks this format).

The codec is total over the library's own workload vocabulary: every
:class:`~repro.workload.distributions.Distribution` the builders emit
(deterministic, exponential, Erlang, hyperexponential, MMPP/on-off and
trace replay),
fault plans, watchdog policies, bus timing and telemetry blocks.
``from_dict(to_dict(request))`` reconstructs a request whose epoch-6
cache key is byte-identical to the original's — the invariance the
round-trip property suite pins down.  Floats survive exactly: JSON
carries their shortest ``repr``, which CPython parses back to the same
IEEE-754 double.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.bus.timing import BusTiming
from repro.bus.watchdog import WatchdogPolicy
from repro.errors import ConfigurationError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.observability.events import TelemetrySettings
from repro.workload.arrivals import MarkovModulatedPoisson
from repro.workload.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Hyperexponential,
)
from repro.workload.scenarios import AgentSpec, ScenarioSpec
from repro.workload.traces import TraceDistribution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    # SimulationSettings lives in repro.experiments.runner, which the
    # session package must not import at module level (the experiments
    # package imports session right back); runtime references resolve
    # lazily inside the codec functions instead.
    from repro.experiments.runner import SimulationSettings
    from repro.stats.summary import RunResult  # noqa: F401

__all__ = ["RunRequest"]

#: Wire-format version; bump on incompatible codec changes.
FORMAT_VERSION = 1


def _distribution_to_dict(dist: Distribution) -> Dict[str, Any]:
    if isinstance(dist, Deterministic):
        return {"type": "deterministic", "value": dist.mean}
    if isinstance(dist, Exponential):
        return {"type": "exponential", "mean": dist.mean}
    if isinstance(dist, Erlang):
        return {"type": "erlang", "mean": dist.mean, "shape": dist.shape}
    if isinstance(dist, Hyperexponential):
        return {"type": "hyperexponential", "mean": dist.mean, "cv": dist.cv}
    if isinstance(dist, MarkovModulatedPoisson):
        # Serialise the *current* modulating phase, so a request captured
        # mid-burst resumes in the same phase.
        return {
            "type": "mmpp",
            "rates": list(dist.rates),
            "switch_rates": list(dist.switch_rates),
            "phase": dist.phase,
        }
    if isinstance(dist, TraceDistribution):
        # Serialise the *current* replay position, so a request captured
        # mid-trace resumes where it stood.
        return {
            "type": "trace",
            "samples": list(dist._samples),
            "offset": dist._index,
            "cycle": dist._cycle,
        }
    raise ConfigurationError(
        f"cannot serialise distribution type {type(dist).__name__!r}; "
        "the RunRequest wire format covers the library's own workload "
        "vocabulary only"
    )


def _distribution_from_dict(doc: Dict[str, Any]) -> Distribution:
    kind = doc.get("type")
    if kind == "deterministic":
        return Deterministic(doc["value"])
    if kind == "exponential":
        return Exponential(doc["mean"])
    if kind == "erlang":
        return Erlang(doc["mean"], doc["shape"])
    if kind == "hyperexponential":
        return Hyperexponential(doc["mean"], doc["cv"])
    if kind == "mmpp":
        return MarkovModulatedPoisson(
            rates=tuple(doc["rates"]),
            switch_rates=tuple(doc["switch_rates"]),
            phase=doc.get("phase", 0),
        )
    if kind == "trace":
        return TraceDistribution(
            doc["samples"], offset=doc.get("offset", 0), cycle=doc.get("cycle", True)
        )
    raise ConfigurationError(f"unknown distribution type {kind!r} in request")


def _scenario_to_dict(scenario: ScenarioSpec) -> Dict[str, Any]:
    return {
        "name": scenario.name,
        "notes": scenario.notes,
        "agents": [
            {
                "agent_id": agent.agent_id,
                "interrequest": _distribution_to_dict(agent.interrequest),
                "priority_fraction": agent.priority_fraction,
                "open_loop": agent.open_loop,
                "max_outstanding": agent.max_outstanding,
            }
            for agent in scenario.agents
        ],
    }


def _scenario_from_dict(doc: Dict[str, Any]) -> ScenarioSpec:
    return ScenarioSpec(
        name=doc["name"],
        notes=doc.get("notes", ""),
        agents=tuple(
            AgentSpec(
                agent_id=agent["agent_id"],
                interrequest=_distribution_from_dict(agent["interrequest"]),
                priority_fraction=agent.get("priority_fraction", 0.0),
                open_loop=agent.get("open_loop", False),
                max_outstanding=agent.get("max_outstanding", 1),
            )
            for agent in doc["agents"]
        ),
    )


def _fault_plan_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    return {
        "events": [
            {
                "time": event.time,
                "kind": event.kind.value,
                "agent_id": event.agent_id,
                "line": event.line,
                "stuck_value": event.stuck_value,
                "duration": event.duration,
                "value": event.value,
            }
            for event in plan.events
        ]
    }


def _fault_plan_from_dict(doc: Dict[str, Any]) -> FaultPlan:
    return FaultPlan(
        events=tuple(
            FaultEvent(
                time=event["time"],
                kind=FaultKind(event["kind"]),
                agent_id=event.get("agent_id"),
                line=event.get("line", 0),
                stuck_value=event.get("stuck_value", 1),
                duration=event.get("duration", 0.0),
                value=event.get("value", 0),
            )
            for event in doc["events"]
        )
    )


def _settings_to_dict(settings: "SimulationSettings") -> Dict[str, Any]:
    doc: Dict[str, Any] = {}
    for spec in fields(settings):
        value = getattr(settings, spec.name)
        if spec.name == "timing":
            value = {
                "transaction_time": value.transaction_time,
                "arbitration_time": value.arbitration_time,
                "clock_period": value.clock_period,
            }
        elif spec.name == "fault_plan":
            value = None if value is None else _fault_plan_to_dict(value)
        elif spec.name == "watchdog":
            value = None if value is None else {
                "max_attempts": value.max_attempts,
                "timeout": value.timeout,
                "backoff": value.backoff,
            }
        elif spec.name == "telemetry":
            value = None if value is None else {
                "events": value.events,
                "metrics": value.metrics,
                "jsonl_path": value.jsonl_path,
            }
        doc[spec.name] = value
    return doc


def _settings_from_dict(doc: Dict[str, Any]) -> "SimulationSettings":
    from repro.experiments.runner import SimulationSettings

    known = {spec.name for spec in fields(SimulationSettings)}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown settings field(s) in request: {', '.join(unknown)}"
        )
    kwargs = dict(doc)
    if "timing" in kwargs:
        kwargs["timing"] = BusTiming(**kwargs["timing"])
    if kwargs.get("fault_plan") is not None:
        kwargs["fault_plan"] = _fault_plan_from_dict(kwargs["fault_plan"])
    if kwargs.get("watchdog") is not None:
        kwargs["watchdog"] = WatchdogPolicy(**kwargs["watchdog"])
    if kwargs.get("telemetry") is not None:
        kwargs["telemetry"] = TelemetrySettings(**kwargs["telemetry"])
    return SimulationSettings(**kwargs)


@dataclass(frozen=True)
class RunRequest:
    """One requested simulation: the session layer's unit of work.

    ``settings`` defaults to a fresh
    :class:`~repro.experiments.runner.SimulationSettings` at resolution
    time (see :func:`resolved`) rather than at construction, mirroring
    :func:`~repro.experiments.runner.run_simulation`'s own default.
    """

    scenario: ScenarioSpec
    protocol: str
    settings: Optional["SimulationSettings"] = None
    #: Caller's label (e.g. ``"load=1.50/rr"``); carried through
    #: untouched for diagnostics.
    tag: Optional[str] = None

    def resolved(self, engine: Optional[str] = None) -> "RunRequest":
        """This request with defaults filled and ``engine`` applied.

        ``engine`` overrides the settings' own declaration (the CLI's
        ``--engine`` reaches grids that build settings internally this
        way); ``None`` leaves it alone.  The override never changes
        cache keys — the engine selector is not part of a cell's
        identity (epoch 6).
        """
        settings = self.settings
        if settings is None:
            from repro.experiments.runner import SimulationSettings

            settings = SimulationSettings()
        if engine is not None and settings.engine != engine:
            settings = replace(settings, engine=engine)
        if settings is self.settings:
            return self
        return replace(self, settings=settings)

    def cache_key(self) -> str:
        """The request's epoch-6 content hash (engine-independent)."""
        from repro.experiments.cache import cache_key

        return cache_key(*self.resolved().as_cell())

    def as_cell(self) -> Tuple[ScenarioSpec, str, "SimulationSettings"]:
        """The ``(scenario, protocol, settings)`` tuple engines consume."""
        return (self.scenario, self.protocol, self.settings)

    # -- wire format ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe description of this request (resolved settings)."""
        resolved = self.resolved()
        return {
            "format": FORMAT_VERSION,
            "protocol": resolved.protocol,
            "tag": resolved.tag,
            "scenario": _scenario_to_dict(resolved.scenario),
            "settings": _settings_to_dict(resolved.settings),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RunRequest":
        """Rebuild a request from :meth:`to_dict`'s output."""
        version = doc.get("format")
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported RunRequest format {version!r} "
                f"(this build speaks {FORMAT_VERSION})"
            )
        return cls(
            scenario=_scenario_from_dict(doc["scenario"]),
            protocol=doc["protocol"],
            settings=_settings_from_dict(doc["settings"]),
            tag=doc.get("tag"),
        )

    def to_json(self) -> str:
        """This request as one canonical JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "RunRequest":
        """Rebuild a request from :meth:`to_json`'s output."""
        try:
            doc = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"malformed RunRequest JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"RunRequest JSON must be an object, got {type(doc).__name__}"
            )
        return cls.from_dict(doc)

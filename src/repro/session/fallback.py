"""The one transparent batch→event fallback, shared by every entry point.

Two kinds of cells reach the event path instead of the batch engine:

- **statically out-of-domain** cells (no batch kernel, an
  ``engine="event"`` declaration, JSONL telemetry in a lane pack,
  out-of-domain fault kinds, ``max_events`` caps).  These were never
  promised the batch engine; the planner routes them silently.
- **runtime degradations**: cells the planner *did* route to the batch
  engine whose kernel then raised.  The per-cell path would quietly
  mask whatever broke, so the degradation is loud — one
  ``RuntimeWarning`` with a single consistent message, and a
  ``fallback_cells`` tally on the orchestrator's
  :class:`~repro.session.outcome.SessionStats` — before the cells are
  handed to the event path (whose retry/diagnostic machinery reports
  real per-cell errors).

Historically the single-run path and ``SweepExecutor`` each carried
their own copy of this logic; :func:`warn_batch_fallback` is now the
only place the warning is worded and counted.
"""

from __future__ import annotations

import warnings

from repro.session.outcome import SessionStats

__all__ = ["batch_fallback_message", "warn_batch_fallback"]


def batch_fallback_message(count: int, exc: BaseException) -> str:
    """The single consistent wording of a runtime batch→event fallback."""
    return (
        f"{count} batch-capable cell(s) fell back to the event engine "
        f"({type(exc).__name__}: {exc})"
    )


def warn_batch_fallback(
    count: int,
    exc: BaseException,
    stats: SessionStats,
    stacklevel: int = 3,
) -> None:
    """Tally and announce ``count`` cells degrading to the event path."""
    stats.fallback_cells += count
    warnings.warn(
        batch_fallback_message(count, exc),
        RuntimeWarning,
        stacklevel=stacklevel,
    )

"""repro — distributed RR and FCFS bus-arbitration protocols.

A complete, executable reproduction of

    M. K. Vernon and U. Manber, "Distributed Round-Robin and First-Come
    First-Serve Protocols and Their Application to Multiprocessor Bus
    Arbitration", Proc. 15th ISCA, 1988, pp. 269-277.

The package contains the paper's two protocols (with every hardware
implementation variant described), every baseline they are compared
against, the wired-OR parallel-contention substrate they run on, the
discrete-event bus simulator of the paper's §4.1, and an experiment
harness that regenerates Tables 4.1–4.5 and Figure 4.1.

Quick start::

    from repro import equal_load, run_simulation, SimulationSettings

    scenario = equal_load(num_agents=10, total_load=1.5)
    result = run_simulation(scenario, "rr", SimulationSettings(seed=1))
    print(result.mean_waiting())            # batch-means 90% CI
    print(result.extreme_throughput_ratio())  # fairness: ≈ 1.00 for RR
"""

from repro.baselines import (
    BatchingAssuredAccess,
    CentralFCFS,
    CentralRoundRobin,
    FixedPriorityArbiter,
    FuturebusAssuredAccess,
    RotatingPriorityRR,
    TicketFCFS,
)
from repro.analysis import (
    aap1_extreme_ratio,
    aap1_relative_throughputs,
    mva_closed_bus,
    saturated_mean_waiting,
    saturated_per_agent_throughput,
)
from repro.bus import (
    BusAgent,
    HandshakeBus,
    BusSystem,
    BusTiming,
    CompletionRecord,
    render_timeline,
)
from repro.core import (
    AdaptiveArbiter,
    Arbiter,
    ArbitrationOutcome,
    DirectMaxFinder,
    DistributedFCFS,
    DistributedRoundRobin,
    HybridArbiter,
    MaxFinder,
    PriorityCounterPolicy,
    Request,
    RRPriorityPolicy,
    WiredOrMaxFinder,
)
from repro.errors import (
    ArbitrationError,
    ConfigurationError,
    NoUniqueWinnerError,
    ProtocolError,
    ReproError,
    SignalError,
    SimulationError,
    StatisticsError,
    SweepExecutionError,
)
from repro.bus.watchdog import BusWatchdog, WatchdogPolicy
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultyWinnerRegisterRR,
    GlitchableFCFS,
)
from repro.experiments import (
    PROTOCOLS,
    Scale,
    SimulationSettings,
    current_scale,
    make_arbiter,
    run_simulation,
)
from repro.protocols import (
    ProtocolSpec,
    get_spec,
    protocol_names,
)
from repro.session import (
    RunOutcome,
    RunRequest,
    Session,
)
from repro.signals import (
    ArbitrationLineBundle,
    AsyncContention,
    AsyncSettleResult,
    BinaryPatternedArbitration,
    ContentionResult,
    ParallelContention,
    WiredOrLine,
)
from repro.stats import (
    BatchMeansEstimate,
    CompletionCollector,
    EmpiricalCDF,
    RunResult,
    batch_means,
    ks_distance,
    min_integer_crossing,
)
from repro.workload import (
    AgentSpec,
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Hyperexponential,
    ScenarioSpec,
    TraceDistribution,
    equal_load,
    from_mean_cv,
    load_trace,
    open_loop_equal_load,
    save_trace,
    synthesize_program_trace,
    unequal_load,
    worst_case_rr,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core protocols
    "Arbiter",
    "ArbitrationOutcome",
    "Request",
    "DistributedRoundRobin",
    "RRPriorityPolicy",
    "DistributedFCFS",
    "PriorityCounterPolicy",
    "HybridArbiter",
    "AdaptiveArbiter",
    "MaxFinder",
    "DirectMaxFinder",
    "WiredOrMaxFinder",
    # baselines
    "FixedPriorityArbiter",
    "BatchingAssuredAccess",
    "FuturebusAssuredAccess",
    "CentralRoundRobin",
    "CentralFCFS",
    "RotatingPriorityRR",
    "TicketFCFS",
    # fault injection & robustness
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultyWinnerRegisterRR",
    "GlitchableFCFS",
    "BusWatchdog",
    "WatchdogPolicy",
    # signals substrate
    "WiredOrLine",
    "ArbitrationLineBundle",
    "ParallelContention",
    "ContentionResult",
    "AsyncContention",
    "AsyncSettleResult",
    "BinaryPatternedArbitration",
    "HandshakeBus",
    # bus model
    "BusSystem",
    "BusAgent",
    "BusTiming",
    "CompletionRecord",
    "render_timeline",
    # analytical models
    "mva_closed_bus",
    "saturated_mean_waiting",
    "saturated_per_agent_throughput",
    "aap1_extreme_ratio",
    "aap1_relative_throughputs",
    # workloads
    "Distribution",
    "Deterministic",
    "Exponential",
    "Erlang",
    "Hyperexponential",
    "from_mean_cv",
    "AgentSpec",
    "ScenarioSpec",
    "equal_load",
    "unequal_load",
    "worst_case_rr",
    "open_loop_equal_load",
    "TraceDistribution",
    "load_trace",
    "save_trace",
    "synthesize_program_trace",
    # statistics
    "BatchMeansEstimate",
    "batch_means",
    "EmpiricalCDF",
    "min_integer_crossing",
    "ks_distance",
    "CompletionCollector",
    "RunResult",
    # session layer (run orchestration)
    "Session",
    "RunRequest",
    "RunOutcome",
    # experiment harness
    "run_simulation",
    "SimulationSettings",
    "make_arbiter",
    "PROTOCOLS",
    "ProtocolSpec",
    "get_spec",
    "protocol_names",
    "Scale",
    "current_scale",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProtocolError",
    "ArbitrationError",
    "NoUniqueWinnerError",
    "SignalError",
    "StatisticsError",
    "SweepExecutionError",
]

"""Executing a fault plan against a live bus system.

The :class:`FaultInjector` is the bridge between a pure
:class:`~repro.faults.plan.FaultPlan` and the simulation: point faults
(dropped broadcasts, counter upsets, agent dropout/re-insertion) are
scheduled on the event calendar when the injector is attached to a
:class:`~repro.bus.model.BusSystem`, while line-level faults (glitches
and stuck-at windows) are applied to the arbitration numbers *as the
wired-OR settles* via :meth:`FaultInjector.perturb`, which the bus calls
on every arbitration outcome.

``perturb`` re-resolves the maximum over the perturbed keys and reports
what a hardware monitor would see: a changed-but-unique winner (a
service-order deviation the run absorbs silently), ``no-winner`` (every
asserted pattern masked to zero) or ``duplicate-winner`` (two agents'
patterns collide) — the two anomaly classes the bus watchdog reacts to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from repro.engine.event import EventPriority
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bus.model import BusSystem
    from repro.core.base import ArbitrationOutcome

__all__ = ["FaultInjector", "PerturbedArbitration"]


@dataclass(frozen=True)
class PerturbedArbitration:
    """What the bus observes after line faults act on an arbitration.

    Attributes
    ----------
    winner:
        The agent the perturbed lines identify (meaningless unless
        ``anomaly`` is ``None``).
    rounds:
        Arbitration passes consumed (inherited from the true outcome).
    anomaly:
        ``None`` for a clean resolution, ``"no-winner"`` when the
        settled pattern is all-zero, ``"duplicate-winner"`` when two
        agents' patterns coincide at the maximum.
    deviated:
        True when the perturbed winner differs from the fault-free one
        (a silent service-order deviation).
    keys:
        The perturbed arbitration numbers, for diagnostics.
    """

    winner: int
    rounds: int
    anomaly: Optional[str] = None
    deviated: bool = False
    keys: Mapping[int, int] = field(default_factory=dict)


class FaultInjector:
    """Schedules a :class:`FaultPlan`'s events against one bus system.

    One injector serves one run: :meth:`attach` consumes the plan's
    point faults onto the simulator calendar, and :meth:`perturb` is
    driven by the bus on every arbitration to apply window and glitch
    faults to the settling lines.  All bookkeeping (applied/skipped
    counts per kind) is exposed for the robustness tables.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: Faults that took effect, per kind value.
        self.applied: Dict[str, int] = {}
        #: Faults that could not take effect (e.g. a counter upset when
        #: the victim had no pending request), per kind value.
        self.skipped: Dict[str, int] = {}
        self._glitches: List[FaultEvent] = list(
            plan.of_kind(FaultKind.LINE_GLITCH)
        )
        self._stuck: List[FaultEvent] = list(plan.of_kind(FaultKind.STUCK_LINE))
        self._system: Optional["BusSystem"] = None

    # -- bookkeeping ---------------------------------------------------------

    def _count(self, table: Dict[str, int], kind: FaultKind) -> None:
        table[kind.value] = table.get(kind.value, 0) + 1

    def count_applied(self, kind: FaultKind) -> None:
        """Record one fault of ``kind`` as having taken effect.

        Public so engines that execute the plan's point faults
        themselves (the batch engine's fault-timer class) keep the same
        applied/skipped books as the calendar-scheduled handlers below.
        """
        self._count(self.applied, kind)

    def count_skipped(self, kind: FaultKind) -> None:
        """Record one fault of ``kind`` as having had no effect."""
        self._count(self.skipped, kind)

    # -- wiring --------------------------------------------------------------

    def attach(self, system: "BusSystem") -> None:
        """Schedule the plan's point faults on the system's calendar.

        Call once, before :meth:`BusSystem.run`, while the simulated
        clock is still at its start.
        """
        self._system = system
        now = system.simulator.now
        for event in self.plan.events:
            if event.kind == FaultKind.DROPPED_BROADCAST:
                self._schedule(system, event.time - now, event, self._drop_broadcast)
            elif event.kind == FaultKind.COUNTER_UPSET:
                self._schedule(system, event.time - now, event, self._upset_counter)
            elif event.kind == FaultKind.AGENT_DROPOUT:
                self._schedule(system, event.time - now, event, self._drop_agent)
                self._schedule(
                    system, event.end_time - now, event, self._reinsert_agent
                )
            # Line faults are not calendar events: they act on whatever
            # arbitration is settling when their moment arrives (perturb).

    def _schedule(self, system, delay, event, action) -> None:
        system.simulator.schedule(
            max(0.0, delay),
            lambda: action(event),
            priority=EventPriority.DEFAULT,
            label=f"fault:{event.kind.value}",
        )

    # -- point faults --------------------------------------------------------

    def _drop_broadcast(self, event: FaultEvent) -> None:
        arbiter = self._system.arbiter
        drop = getattr(arbiter, "drop_winner_observations", None)
        if drop is None:
            self._count(self.skipped, event.kind)
            return
        drop(event.agent_id, 1)
        self._count(self.applied, event.kind)

    def _upset_counter(self, event: FaultEvent) -> None:
        from repro.errors import ProtocolError

        arbiter = self._system.arbiter
        glitch = getattr(arbiter, "glitch_counter", None)
        if glitch is None:
            self._count(self.skipped, event.kind)
            return
        try:
            glitch(event.agent_id, event.value)
        except ProtocolError:
            # The victim had no pending request: the upset hit an idle
            # register and is overwritten at the next request (§3.2).
            self._count(self.skipped, event.kind)
            return
        self._count(self.applied, event.kind)

    def _drop_agent(self, event: FaultEvent) -> None:
        agent = self._system.agents.get(event.agent_id)
        if agent is None or not agent.drop_out():
            self._count(self.skipped, event.kind)
            return
        self._count(self.applied, event.kind)

    def _reinsert_agent(self, event: FaultEvent) -> None:
        agent = self._system.agents.get(event.agent_id)
        if agent is not None:
            agent.rejoin()

    # -- line faults ---------------------------------------------------------

    def perturb(
        self, outcome: "ArbitrationOutcome", now: float
    ) -> PerturbedArbitration:
        """Apply due line faults to an arbitration's settling numbers.

        Consumes every pending glitch whose time has arrived (a glitch
        is transient: it perturbs exactly one arbitration) and applies
        every stuck-line window covering ``now``, then re-resolves the
        maximum the way the monitoring logic on the bus would.
        """
        keys = dict(outcome.keys)
        clean = PerturbedArbitration(
            winner=outcome.winner, rounds=outcome.rounds, keys=keys
        )
        if not keys:
            # Protocol does not expose line-level numbers (central
            # oracles); line faults cannot act on it.
            return clean

        touched = False
        while self._glitches and self._glitches[0].time <= now:
            glitch = self._glitches.pop(0)
            victim = glitch.agent_id
            if victim not in keys:
                # Deterministic fallback: the glitch lands on the
                # lowest-identity competitor's applied pattern.
                victim = min(keys)
            keys[victim] ^= 1 << glitch.line
            self._count(self.applied, FaultKind.LINE_GLITCH)
            touched = True
        for window in self._stuck:
            if window.time <= now < window.end_time:
                mask = 1 << window.line
                for agent in keys:
                    if window.stuck_value:
                        keys[agent] |= mask
                    else:
                        keys[agent] &= ~mask
                self._count(self.applied, FaultKind.STUCK_LINE)
                touched = True
        if not touched:
            return clean

        top = max(keys.values())
        leaders = [agent for agent, key in keys.items() if key == top]
        if top == 0:
            anomaly: Optional[str] = "no-winner"
        elif len(leaders) > 1:
            anomaly = "duplicate-winner"
        else:
            anomaly = None
        winner = leaders[0] if len(leaders) == 1 else outcome.winner
        return PerturbedArbitration(
            winner=winner,
            rounds=outcome.rounds,
            anomaly=anomaly,
            deviated=anomaly is None and winner != outcome.winner,
            keys=keys,
        )

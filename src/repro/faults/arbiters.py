"""Fault-observable arbiter variants: §3.1 and §3.2 made executable.

The paper argues its static-identity RR protocol "is more robust and
simpler to implement than previous distributed RR protocols that are
based on rotating agent priorities", but gives no experiment.  The
argument is structural, and these arbiters let you run it:

- every distributed RR variant replicates one piece of state at every
  agent — the identity of the last arbitration winner;
- a transient fault (a glitched winner broadcast, a brown-out during
  one arbitration) can make one agent's replica stale;
- with **static identities** (:class:`FaultyWinnerRegisterRR`) the stale
  replica only mis-sets that agent's RR-priority *bit* for a while: the
  numbers on the lines stay globally unique, a winner always resolves,
  and the next arbitration the agent observes re-synchronises it —
  bounded, self-healing service-order deviation;
- with **rotating priorities** (:class:`repro.baselines.rotating.
  RotatingPriorityRR` plus :meth:`~RotatingPriorityRR.
  drop_winner_observations`) the stale replica shifts the agent's whole
  *arbitration number*: two agents can apply the same number, the
  wired-OR of their patterns no longer identifies a unique winner, and
  the arbiter fails permanently.

A counter-glitch fault for the FCFS arbiter is included too: a
corrupted waiting-time counter mis-orders service briefly but heals at
the request boundary, since counters are per-request state.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.base import ArbitrationOutcome, MaxFinder, Request
from repro.core.fcfs import DistributedFCFS
from repro.core.round_robin import DistributedRoundRobin
from repro.errors import ProtocolError

__all__ = ["FaultyWinnerRegisterRR", "GlitchableFCFS"]


class FaultyWinnerRegisterRR(DistributedRoundRobin):
    """RR implementation 1 with *per-agent* winner registers.

    The production arbiter models the winner register once, because on a
    healthy bus every agent reads the same settled lines.  This variant
    replicates the register per agent so a broadcast fault can be
    injected at one of them, and implements the §3.1 recovery story:
    the protocol keeps running through the fault and heals at the next
    observed arbitration.
    """

    name = "rr-faulty-register"

    def __init__(self, num_agents: int, max_finder: Optional[MaxFinder] = None) -> None:
        super().__init__(num_agents, implementation=1, max_finder=max_finder)
        #: Each agent's private copy of the last-winner register.
        self.view: Dict[int, int] = {a: 0 for a in range(1, num_agents + 1)}
        self._drops: Dict[int, int] = {}
        #: Diagnostics: observations dropped so far.
        self.observations_dropped = 0

    # -- fault API -----------------------------------------------------------

    def drop_winner_observations(self, agent_id: int, count: int = 1) -> None:
        """Make ``agent_id`` miss its next ``count`` winner broadcasts."""
        self._validate_agent(agent_id)
        if count < 1:
            raise ProtocolError(f"count must be >= 1, got {count}")
        self._drops[agent_id] = self._drops.get(agent_id, 0) + count

    def desynchronised_agents(self) -> frozenset:
        """Agents whose register disagrees with the true last winner."""
        return frozenset(
            agent for agent, seen in self.view.items() if seen != self.last_winner
        )

    # -- protocol ------------------------------------------------------------

    def _effective_key(self, record: Request) -> int:
        # Same layout as the production arbiter, but the RR bit comes
        # from this agent's possibly-stale private register.
        k = self.static_bits
        rr_bit = 1 if record.agent_id < self.view[record.agent_id] else 0
        priority_bit = 1 if record.priority else 0
        return (priority_bit << (k + 1)) | (rr_bit << k) | record.agent_id

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        outcome = super().start_arbitration(now)
        # super() updated the shared last_winner; propagate to every
        # agent that actually observes this arbitration's end.
        for agent in self.view:
            pending_drops = self._drops.get(agent, 0)
            if pending_drops:
                self._drops[agent] = pending_drops - 1
                self.observations_dropped += 1
                continue
            self.view[agent] = outcome.winner
        return outcome

    def reset(self) -> None:
        super().reset()
        self.view = {a: 0 for a in range(1, self.num_agents + 1)}
        self._drops.clear()
        self.observations_dropped = 0


class GlitchableFCFS(DistributedFCFS):
    """FCFS arbiter whose waiting-time counters can be corrupted.

    Models a single-event upset in one agent's counter register.  The
    fault mis-orders service while the corrupted request waits, then
    vanishes: the counter is per-request state and resets at the next
    request (§3.2's reset-on-new-request rule is what bounds the blast
    radius).
    """

    name = "fcfs-glitchable"

    def __init__(self, num_agents: int, **kwargs) -> None:
        kwargs.setdefault("strategy", 1)
        super().__init__(num_agents, **kwargs)
        #: Diagnostics: glitches injected so far.
        self.glitches_injected = 0

    def glitch_counter(self, agent_id: int, value: int) -> None:
        """Overwrite the counter of the agent's oldest pending request."""
        self._validate_agent(agent_id)
        queue = self._queues.get(agent_id)
        if not queue:
            raise ProtocolError(f"agent {agent_id} has no pending request to glitch")
        queue[0].counter = value % self.counter_modulus
        self.glitches_injected += 1

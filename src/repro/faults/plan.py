"""Deterministic fault plans: what goes wrong, when, to whom.

A :class:`FaultPlan` is an immutable, seeded schedule of
:class:`FaultEvent` objects against simulated time.  Plans are pure data:
two plans generated from the same ``(seed, rate, horizon, kinds,
num_agents)`` are identical, they pickle across process boundaries, and
they hash into the result cache via :meth:`FaultPlan.spec_key` — so a
robustness sweep is exactly as deterministic and cacheable as a healthy
one.

The fault model covers the degraded-bus scenarios the Futurebus family
is specified against (and that §3.1's robustness argument is about):

- :attr:`FaultKind.LINE_GLITCH` — a transient bit flip on one
  arbitration line while the wired-OR settles: one competitor's applied
  pattern is perturbed for a single arbitration;
- :attr:`FaultKind.STUCK_LINE` — an arbitration line stuck at 0 or 1
  for a window of time, masking every pattern asserted during it;
- :attr:`FaultKind.DROPPED_BROADCAST` — one agent misses the winner
  broadcast at the end of an arbitration, desynchronising its replica
  of the protocol state (the §3.1 fault);
- :attr:`FaultKind.COUNTER_UPSET` — a single-event upset in one FCFS
  waiting-time counter register (§3.2's reset-on-new-request rule
  bounds the blast radius);
- :attr:`FaultKind.AGENT_DROPOUT` — an agent drops off the bus for a
  window and is hot-inserted back, the live-insertion scenario.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.engine.rng import derive_seed
from repro.errors import ConfigurationError

__all__ = [
    "FaultKind",
    "BUS_LEVEL_FAULTS",
    "FaultEvent",
    "FaultPlan",
]

import random


class FaultKind(enum.Enum):
    """One class of injectable fault; values appear in tables and keys."""

    LINE_GLITCH = "line-glitch"
    STUCK_LINE = "stuck-line"
    DROPPED_BROADCAST = "dropped-broadcast"
    COUNTER_UPSET = "counter-upset"
    AGENT_DROPOUT = "agent-dropout"


#: Faults injected at the bus-signal level, applicable to any protocol
#: that arbitrates on shared wired-OR lines (the central oracles and the
#: ticket dispenser do not, so they only support :attr:`AGENT_DROPOUT`).
BUS_LEVEL_FAULTS: FrozenSet[FaultKind] = frozenset(
    {FaultKind.LINE_GLITCH, FaultKind.STUCK_LINE, FaultKind.AGENT_DROPOUT}
)

#: Fault kinds whose events need a duration window.
_WINDOWED = frozenset({FaultKind.STUCK_LINE, FaultKind.AGENT_DROPOUT})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    time:
        Simulated time at which the fault strikes.
    kind:
        The fault class.
    agent_id:
        Victim agent for agent-directed faults (dropped broadcast,
        counter upset, dropout); for line faults it selects whose
        applied pattern the glitch lands on (optional).
    line:
        Arbitration-line index for line faults (bit position, LSB = 0).
    stuck_value:
        For :attr:`FaultKind.STUCK_LINE`: the level the line is stuck
        at, 0 or 1.
    duration:
        Window length for stuck lines and dropouts; 0 for point faults.
    value:
        For :attr:`FaultKind.COUNTER_UPSET`: the corrupted counter
        value written into the victim's oldest pending request.
    """

    time: float
    kind: FaultKind
    agent_id: Optional[int] = None
    line: int = 0
    stuck_value: int = 1
    duration: float = 0.0
    value: int = 0

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.time}")
        if self.line < 0:
            raise ConfigurationError(f"line index must be >= 0, got {self.line}")
        if self.stuck_value not in (0, 1):
            raise ConfigurationError(
                f"stuck_value must be 0 or 1, got {self.stuck_value}"
            )
        if self.duration < 0.0:
            raise ConfigurationError(
                f"fault duration must be >= 0, got {self.duration}"
            )
        if self.kind in _WINDOWED and self.duration <= 0.0:
            raise ConfigurationError(
                f"{self.kind.value} faults need a positive duration"
            )
        if self.kind in (
            FaultKind.DROPPED_BROADCAST,
            FaultKind.COUNTER_UPSET,
            FaultKind.AGENT_DROPOUT,
        ) and self.agent_id is None:
            raise ConfigurationError(
                f"{self.kind.value} faults need a victim agent_id"
            )

    @property
    def end_time(self) -> float:
        """When a windowed fault clears (equals ``time`` for point faults)."""
        return self.time + self.duration

    def spec_key(self) -> list:
        """Canonical JSON-serialisable description, for cache keying."""
        return [
            self.time,
            self.kind.value,
            self.agent_id,
            self.line,
            self.stuck_value,
            self.duration,
            self.value,
        ]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of fault events.

    Build one explicitly from events, or derive one deterministically
    from a seed with :meth:`generate`.  Equal construction inputs give
    equal plans; the plan is part of a simulation cell's identity (it
    feeds the result-cache key via :meth:`spec_key`).
    """

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.time, e.kind.value)))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        """Number of scheduled fault events."""
        return len(self.events)

    def kinds(self) -> FrozenSet[FaultKind]:
        """The distinct fault kinds this plan injects."""
        return frozenset(event.kind for event in self.events)

    def of_kind(self, kind: FaultKind) -> Tuple[FaultEvent, ...]:
        """The plan's events of one kind, in time order."""
        return tuple(event for event in self.events if event.kind == kind)

    def spec_key(self) -> list:
        """Canonical JSON-serialisable description, for cache keying."""
        return [event.spec_key() for event in self.events]

    @classmethod
    def generate(
        cls,
        seed: int,
        rate: float,
        horizon: float,
        kinds: Iterable[FaultKind],
        num_agents: int,
        start: float = 0.0,
        line_span: int = 4,
        mean_duration: float = 2.0,
        counter_span: int = 16,
    ) -> "FaultPlan":
        """Derive a deterministic Poisson fault schedule.

        Fault arrivals form a Poisson process of intensity ``rate``
        (faults per unit of simulated time) over ``[start, horizon)``;
        each arrival draws its kind uniformly from ``kinds`` and its
        victim uniformly from ``1..num_agents``.  All randomness comes
        from ``derive_seed(seed, ...)``, so the plan is a pure function
        of its arguments — independent of process, platform and call
        order.

        Parameters
        ----------
        seed:
            Master seed; the plan stream is derived from it, so it can
            safely equal the simulation's settings seed.
        rate:
            Expected faults per unit time; 0 gives an empty plan.
        horizon:
            End of the injection window (simulated time).
        kinds:
            Fault kinds to draw from; must be non-empty.
        num_agents:
            Victim pool (identities ``1..num_agents``).
        start:
            Beginning of the injection window (e.g. past the warmup).
        line_span:
            Line faults strike a uniformly drawn line in ``[0,
            line_span)``.
        mean_duration:
            Mean window length for stuck lines and dropouts.
        counter_span:
            Counter upsets write a uniformly drawn value in ``[0,
            counter_span)``.
        """
        kind_list = sorted(set(kinds), key=lambda k: k.value)
        if rate < 0.0:
            raise ConfigurationError(f"fault rate must be >= 0, got {rate}")
        if horizon <= start:
            raise ConfigurationError(
                f"horizon {horizon} must exceed start {start}"
            )
        if rate > 0.0 and not kind_list:
            raise ConfigurationError("a non-empty fault plan needs fault kinds")
        if num_agents < 1:
            raise ConfigurationError(f"need at least one agent, got {num_agents}")
        stream_name = (
            f"fault-plan/r{rate:g}/h{horizon:g}/s{start:g}/"
            + ",".join(kind.value for kind in kind_list)
        )
        rng = random.Random(derive_seed(seed, stream_name))
        events = []
        time = start
        while rate > 0.0:
            time += rng.expovariate(rate)
            if time >= horizon:
                break
            kind = kind_list[rng.randrange(len(kind_list))]
            agent_id = rng.randrange(1, num_agents + 1)
            duration = 0.0
            if kind in _WINDOWED:
                duration = rng.uniform(0.5, 1.5) * mean_duration
            events.append(
                FaultEvent(
                    time=time,
                    kind=kind,
                    agent_id=agent_id,
                    line=rng.randrange(max(1, line_span)),
                    stuck_value=rng.randrange(2),
                    duration=duration,
                    value=rng.randrange(max(1, counter_span)),
                )
            )
        return cls(events=tuple(events))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = sorted(kind.value for kind in self.kinds())
        return f"FaultPlan({len(self.events)} events, kinds={kinds})"


def _sequence_repr(events: Sequence[FaultEvent]) -> str:  # pragma: no cover
    return ", ".join(f"{e.kind.value}@{e.time:g}" for e in events)

"""Deterministic fault injection for degraded-bus experiments.

This package turns the paper's robustness arguments (§3.1's static-vs-
rotating identity comparison, §3.2's counter-reset rule) into runnable
experiments:

- :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultEvent` /
  :class:`FaultKind`: a pure, seeded, time-sorted schedule of faults;
- :mod:`repro.faults.injector` — :class:`FaultInjector`: executes a plan
  against a live :class:`~repro.bus.model.BusSystem`, scheduling point
  faults on the calendar and perturbing arbitration lines in flight;
- :mod:`repro.faults.arbiters` — :class:`FaultyWinnerRegisterRR` and
  :class:`GlitchableFCFS`: arbiter variants whose replicated state is
  observable and corruptible.

Recovery from the anomalies the injector produces is the job of the bus
watchdog (:mod:`repro.bus.watchdog`); the robustness grid that sweeps
fault rate × protocol lives in :mod:`repro.experiments.robustness`.
"""

from repro.faults.arbiters import FaultyWinnerRegisterRR, GlitchableFCFS
from repro.faults.injector import FaultInjector, PerturbedArbitration
from repro.faults.plan import BUS_LEVEL_FAULTS, FaultEvent, FaultKind, FaultPlan

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "BUS_LEVEL_FAULTS",
    "FaultInjector",
    "PerturbedArbitration",
    "FaultyWinnerRegisterRR",
    "GlitchableFCFS",
]

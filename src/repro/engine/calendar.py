"""The event calendar: a stable priority queue over :class:`Event`.

Implemented on :mod:`heapq` with ``(time, priority, sequence)`` keys.  The
monotonically increasing sequence number guarantees FIFO order among events
with identical time and priority, which keeps simulations reproducible.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Tuple

from repro.engine.event import Event, EventPriority
from repro.errors import SimulationError

__all__ = ["EventCalendar"]


class EventCalendar:
    """Time-ordered queue of pending events.

    The calendar never runs events itself; :class:`repro.engine.simulator.
    Simulator` pops and fires them.  Cancelled events are dropped lazily on
    pop.
    """

    __slots__ = ("_heap", "_sequence", "_live")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = EventPriority.DEFAULT,
        label: Optional[str] = None,
    ) -> Event:
        """Create an event and insert it; returns the event for cancellation.

        Raises
        ------
        SimulationError
            If ``time`` is negative, NaN or infinite.
        """
        if not math.isfinite(time) or time < 0.0:
            raise SimulationError(f"cannot schedule event at time {time!r}")
        event = Event(time, action, priority=priority, label=label)
        self._push(event)
        return event

    def push(self, event: Event) -> None:
        """Insert an already-constructed event."""
        if not math.isfinite(event.time) or event.time < 0.0:
            raise SimulationError(f"cannot schedule event at time {event.time!r}")
        self._push(event)

    def _push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, event.priority, self._sequence, event))
        self._sequence += 1
        self._live += 1
        event._queued = True

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent).

        Only an event that is still queued counts against the live total;
        cancelling one that already fired (or was already cancelled) is a
        no-op.  Without the ``queued`` guard a late cancel would drive the
        live count below the true queue size, making ``__bool__`` /
        ``__len__`` lie and letting a simulation run exit early.
        """
        if event._queued and not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        SimulationError
            If the calendar is empty.
        """
        while self._heap:
            __, __, __, event = heapq.heappop(self._heap)
            event._queued = False
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from an empty event calendar")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)[3]._queued = False
        if not self._heap:
            return None
        return self._heap[0][0]

    def clear(self) -> None:
        """Drop every pending event."""
        for __, __, __, event in self._heap:
            event._queued = False
        self._heap.clear()
        self._live = 0

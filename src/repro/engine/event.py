"""Event objects for the discrete-event engine.

An :class:`Event` couples a simulation time with a zero-argument callback.
Events at the same timestamp are ordered first by an integer *priority*
(lower runs first) and then by insertion order, which makes simultaneous
bus-protocol events (e.g. "transaction ends" before "next master granted")
deterministic without floating-point epsilon tricks.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

__all__ = ["Event", "EventPriority"]


class EventPriority(enum.IntEnum):
    """Tie-break ranks for events scheduled at the same instant.

    The ordering encodes the bus-cycle micro-sequence of the paper's model:
    a bus tenure ends, then a pending arbitration result is applied and the
    next master is granted, then new arbitrations are started, and only
    then do freshly generated requests from agents get to assert the
    request line (a request generated at the very instant a transaction
    ends cannot have taken part in the arbitration that overlapped that
    transaction).
    """

    RELEASE = 0
    GRANT = 1
    ARBITRATION = 2
    REQUEST = 3
    #: Deferred arbitration start: runs after every same-instant request
    #: event, so a request issued at the very moment an arbitration would
    #: begin still makes it into the competitor snapshot (essential for
    #: deterministic CV = 0 workloads, where simultaneity is the norm).
    ARB_KICK = 4
    MEASURE = 5
    DEFAULT = 6


class Event:
    """A scheduled occurrence in simulated time.

    Parameters
    ----------
    time:
        Simulation time at which the event fires.  Must be finite and
        non-negative.
    action:
        Zero-argument callable executed when the event fires.
    priority:
        Tie-break rank among events with equal ``time``.
    label:
        Optional human-readable tag used by tracing and error messages.
    """

    __slots__ = ("time", "action", "priority", "label", "_cancelled", "_queued")

    def __init__(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = EventPriority.DEFAULT,
        label: Optional[str] = None,
    ) -> None:
        self.time = float(time)
        self.action = action
        self.priority = int(priority)
        self.label = label
        self._cancelled = False
        self._queued = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    @property
    def queued(self) -> bool:
        """Whether the event currently sits in a calendar awaiting its pop.

        Maintained by :class:`~repro.engine.calendar.EventCalendar`: set on
        push, cleared when the event is popped (fired or discarded).  The
        calendar uses it to keep its live count honest when asked to cancel
        an event that has already run.
        """
        return self._queued

    def cancel(self) -> None:
        """Mark the event so the calendar skips it instead of firing it.

        Cancellation is lazy: the event stays in the heap and is discarded
        when popped.  This is O(1) and is the standard technique for
        calendars whose events are rarely cancelled.
        """
        self._cancelled = True

    def fire(self) -> None:
        """Execute the event's action."""
        self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.label or getattr(self.action, "__name__", "action")
        state = " cancelled" if self._cancelled else ""
        return f"Event(t={self.time:.6g}, {tag}, prio={self.priority}{state})"

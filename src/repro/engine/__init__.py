"""Discrete-event simulation engine.

This subpackage is the simulation substrate on which the bus model of
:mod:`repro.bus` runs.  It provides:

- :class:`~repro.engine.event.Event` — an immutable scheduled occurrence;
- :class:`~repro.engine.calendar.EventCalendar` — a priority-queue event
  list with stable FIFO ordering for simultaneous events;
- :class:`~repro.engine.simulator.Simulator` — the event loop, with stop
  conditions, step-wise execution and introspection hooks;
- :class:`~repro.engine.rng.RandomStreams` — reproducible, independent
  per-entity random-number streams derived from a single master seed;
- :class:`~repro.engine.trace.Trace` — an optional bounded in-memory trace
  of executed events for debugging and for the test suite.
"""

from repro.engine.calendar import EventCalendar
from repro.engine.event import Event, EventPriority
from repro.engine.rng import RandomStreams
from repro.engine.simulator import Simulator, StopCondition
from repro.engine.trace import Trace, TraceRecord

__all__ = [
    "Event",
    "EventPriority",
    "EventCalendar",
    "Simulator",
    "StopCondition",
    "RandomStreams",
    "Trace",
    "TraceRecord",
]

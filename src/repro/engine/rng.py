"""Reproducible random-number streams.

Every stochastic entity in a simulation (each bus agent, mainly) draws from
its own :class:`random.Random` stream, derived deterministically from one
master seed and a stable stream name.  Independent streams mean that adding
an agent, or changing how often one agent samples, does not perturb the
variate sequences seen by the others — the standard variance-reduction
hygiene for comparing arbitration protocols on *identical* arrival
processes (common random numbers).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(master_seed: int, stream_name: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name.

    The derivation hashes ``"<master_seed>/<stream_name>"`` with SHA-256,
    so it is stable across Python versions and processes (unlike
    ``hash()``, which is salted).
    """
    digest = hashlib.sha256(f"{master_seed}/{stream_name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A family of named, independent :class:`random.Random` generators.

    Parameters
    ----------
    master_seed:
        Seed from which every named stream is derived.  Two
        ``RandomStreams`` built with the same master seed hand out
        identical streams for identical names.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = generator
        return generator

    def agent_stream(self, agent_id: int) -> random.Random:
        """Convenience accessor for the per-agent arrival stream."""
        return self.stream(f"agent/{agent_id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RandomStreams(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )

"""Lockstep heterogeneous-lane batch engine.

The event-driven engine (:mod:`repro.engine.simulator` driving
:class:`~repro.bus.model.BusSystem`) is fully general: it handles
synchronous clocking, priority classes, open-loop sources, arbitrary
fault hooks and the watchdog.  But the paper's experiments — closed-loop
agents on a self-timed bus — have a rigidly cyclic structure: request →
arbitration rounds → tenure → release, repeat.  For that restricted
(and dominant) domain this module provides a calendar-free engine that
advances many independent *lanes* in lockstep, amortising the Python
interpreter overhead that dominates grid-shaped sweeps.

A lane is one (scenario, protocol, settings) cell.  Unlike the first
batch engine, lanes are *heterogeneous*: one super-batch may mix bus
sizes (a ragged n=2 lane next to an n=32 lane), request rates, seeds and
protocol variants.  Each lane keeps padded struct-of-arrays state sized
to its own agent count — flat per-agent arrays (next-request timers,
think-time buffers, FCFS counters, activity masks) plus a handful of
scalar timers — and its protocol kernel resolves arbitrations on integer
bitmasks of pending requesters (the wired-OR maximum-finding of §2).
:func:`run_lanes` groups lanes by kernel family so each lockstep pass
runs one kernel implementation over every lane of that family.

Faults are in-domain.  Injected bus-level faults and watchdog recovery
are modelled as two additional timer classes on the collapsed calendar:
``t_retry`` (the watchdog's backed-off re-arbitration) and ``t_fault``
(the plan's next agent dropout / hot re-insertion), turning the original
four-way min dispatch (release, arbitration-complete, request, kick)
into a six-way one.  Line glitches and stuck-at windows never become
timers: as in the event engine they perturb the arbitration numbers the
kernel exposes via ``arbitrate_keys`` while the wired-OR settles, which
is why only protocols whose registry spec sets ``supports_batch_faults``
admit fault plans here.

Correctness contract
--------------------
For every batch-capable cell the engine reproduces the event-driven
engine *exactly*: identical winner sequences, identical
:class:`~repro.observability.events.ArbitrationEvent` streams, identical
collector statistics and identical floating-point timestamps, given the
same seed.  This holds because the dispatch loop replays the calendar's
ordering rule — (time, priority, insertion sequence) with RELEASE <
ARBITRATION < REQUEST < ARB_KICK = WATCHDOG-RETRY < FAULT — and every
timestamp is computed by the same floating-point expression
(``now + delay``) the event engine uses.  The cross-engine differential
suite (``tests/conformance/test_differential_engines.py``) and the
golden traces (including the fault-domain twins) enforce the contract.

Request timers live in a per-lane heap: every agent owns at most one
think timer at a time, so the heap holds at most n entries and its
(time, sequence) tuple order is exactly the calendar's request-vs-
request tie-break.  A vectorised numpy timer scan is retained behind
``REPRO_BATCH_NUMPY=1`` (feature-detected; runtime dependencies stay
empty), but it is off by default at every bus width: measured on
CPython, one ``np.min`` + ``np.flatnonzero`` round trip per dispatch
costs more than the heap's cached peek even at 64 agents.
"""

from __future__ import annotations

import copy
import os
from dataclasses import replace
from heapq import heapify, heappop, heappush
from math import inf as _INF
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.bus.agent import _THINK_BLOCK
from repro.bus.watchdog import BusWatchdog
from repro.core.base import ArbitrationOutcome, identity_bits
from repro.engine.rng import RandomStreams
from repro.errors import ConfigurationError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import BUS_LEVEL_FAULTS, FaultEvent, FaultKind
from repro.observability.events import ArbitrationEvent
from repro.observability.metrics import WAIT_BUCKETS, MetricsRegistry, MetricsSink
from repro.observability.sinks import InMemorySink, JsonlSink
from repro.protocols.registry import get_spec
from repro.stats.collector import CompletionCollector
from repro.stats.summary import RunResult
from repro.workload.scenarios import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import SimulationSettings

__all__ = [
    "HAVE_NUMPY",
    "LANE_WIDTH",
    "batch_capable",
    "kernel_family",
    "run_lanes",
    "run_simulation_batch",
    "run_replications",
]

try:  # feature check: numpy is an optional accelerator, never a dependency
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - depends on the environment
    _np = None
    HAVE_NUMPY = False


#: Completions each live lane advances per lockstep round.  Large enough
#: to amortise the round-robin over lanes, small enough that all lanes
#: of a super-batch stay within one round of each other.  Recorded in
#: benchmark metadata as the lane width.
_LOCKSTEP_BLOCK = 64

#: Public alias of the lockstep block, for benchmark environment records.
LANE_WIDTH = _LOCKSTEP_BLOCK


def _numpy_enabled(num_agents: int) -> bool:
    """Decide the timer-scan implementation for one lane.

    The timer heap wins at every bus width on CPython (its peek is a
    cached local; the numpy scan pays an array round trip per
    dispatch), so the vector path only runs when explicitly forced —
    kept alive, and differentially tested, for interpreters where the
    trade-off flips.
    """
    forced = os.environ.get("REPRO_BATCH_NUMPY")
    if forced is not None and forced.strip().lower() in ("1", "true", "yes", "on"):
        return HAVE_NUMPY
    return False


# ---------------------------------------------------------------------------
# Protocol kernels
# ---------------------------------------------------------------------------
#
# Each kernel mirrors one registry protocol's arbitration exactly, with
# the pending-request set held as a bitmask (bit i = agent i; agent ids
# start at 1, so bit 0 is always clear — the paper reserves identity 0).
# Every batch-capable arbiter's ``release`` is a no-op and its grant
# simply drops the winner's (single) outstanding request, so kernels
# only need ``request`` / ``arbitrate`` / ``grant`` — plus
# ``arbitrate_keys``, the fault-domain variant that also returns the
# per-agent arbitration numbers the event arbiter would put on the
# lines, which is the surface the fault injector perturbs.


def _identity_keys(mask: int) -> Dict[int, int]:
    """Key map ``{agent: agent}`` over a competitor bitmask.

    The batch domain excludes priority classing, so every protocol whose
    event arbiter applies ``(flag << k) | id`` with a constant-zero flag
    puts the bare identity on the lines.
    """
    keys = {}
    while mask:
        bit = mask & -mask
        agent = bit.bit_length() - 1
        mask ^= bit
        keys[agent] = agent
    return keys


class _RoundRobinKernel:
    """Distributed round-robin, implementations 1–3 (priority-free).

    The event-engine arbiters build per-agent keys ``(rr_bit << k) | id``
    and take the wired-OR maximum; with unique identities that maximum
    is simply the highest id among the agents "below" the previous
    winner when any exist, else the highest id overall — a two-bitmask
    computation here.
    """

    __slots__ = ("num_agents", "impl", "bits", "pending", "last_winner", "issue")

    def __init__(self, num_agents: int, impl: int) -> None:
        self.num_agents = num_agents
        self.impl = impl
        self.bits = identity_bits(num_agents)
        self.pending = 0
        # Implementation 3 starts with the fictitious identity N+1 so the
        # very first pass already sees a non-empty "low" set.
        self.last_winner = num_agents + 1 if impl == 3 else 0
        self.issue = [0.0] * (num_agents + 1)

    def request(self, agent_id: int, now: float) -> None:
        self.pending |= 1 << agent_id
        self.issue[agent_id] = now

    def arbitrate(self) -> Tuple[int, int, int]:
        pending = self.pending
        low = pending & ((1 << self.last_winner) - 1)
        rounds = 1
        if self.impl == 1:
            competitors = pending
            winner = (low or pending).bit_length() - 1
        elif self.impl == 2:
            competitors = low or pending
            winner = competitors.bit_length() - 1
        else:  # impl 3: an empty low set costs one extra settle pass
            if low:
                competitors = low
            else:
                competitors = pending
                rounds = 2
            winner = competitors.bit_length() - 1
        self.last_winner = winner
        return winner, rounds, competitors

    def arbitrate_keys(self) -> Tuple[int, int, int, Dict[int, int]]:
        """:meth:`arbitrate`, also returning the applied key map.

        Implementation 1 puts every pending agent on the lines with its
        round-robin bit (set exactly for the "low" set); 2 and 3 gate
        competitors through the low-request line first, so only bare
        identities compete.  State updates are identical to
        :meth:`arbitrate` — an anomalous (never granted) pass still
        advances ``last_winner``, as the event arbiter's does.
        """
        pending = self.pending
        last = self.last_winner
        low = pending & ((1 << last) - 1)
        rounds = 1
        if self.impl == 1:
            competitors = pending
            winner = (low or pending).bit_length() - 1
            high = 1 << self.bits
            keys = {}
            mask = pending
            while mask:
                bit = mask & -mask
                agent = bit.bit_length() - 1
                mask ^= bit
                keys[agent] = (high | agent) if agent < last else agent
        else:
            if self.impl == 2:
                competitors = low or pending
            elif low:
                competitors = low
            else:
                competitors = pending
                rounds = 2
            winner = competitors.bit_length() - 1
            keys = _identity_keys(competitors)
        self.last_winner = winner
        return winner, rounds, competitors, keys

    def grant(self, agent_id: int) -> float:
        self.pending &= ~(1 << agent_id)
        return self.issue[agent_id]


class _FcfsKernel:
    """Distributed FCFS, counter strategies 1 (increment) and 2 (A-incr).

    Strategy 1 increments every loser's waiting counter after each
    arbitration; strategy 2 timestamps arrivals with a shared pulse tick
    (coincidence window 0, matching the event-engine default) and uses
    the tick age as the counter.  Keys are
    ``(counter % modulus) << k | id`` with ``modulus = 2**k``; the
    winner is the wired-OR maximum.
    """

    __slots__ = (
        "num_agents",
        "strategy",
        "bits",
        "modulus",
        "pending",
        "issue",
        "counter",
        "tick",
        "last_pulse",
        "rtick",
    )

    def __init__(self, num_agents: int, strategy: int) -> None:
        self.num_agents = num_agents
        self.strategy = strategy
        self.bits = identity_bits(num_agents)
        self.modulus = 1 << self.bits
        self.pending = 0
        self.issue = [0.0] * (num_agents + 1)
        self.counter = [0] * (num_agents + 1)
        self.tick = 0
        self.last_pulse = -_INF
        self.rtick = [0] * (num_agents + 1)

    def request(self, agent_id: int, now: float) -> None:
        self.pending |= 1 << agent_id
        self.issue[agent_id] = now
        if self.strategy == 1:
            self.counter[agent_id] = 0
        else:
            if now - self.last_pulse > 0.0:
                self.tick += 1
                self.last_pulse = now
            self.rtick[agent_id] = self.tick

    def arbitrate(self) -> Tuple[int, int, int]:
        # The fault-free hot path: one bit-scan, no key map.  Strategy
        # 1 ages every competitor in the same pass and un-ages the
        # winner afterwards — value-identical to snapshotting keys
        # first and incrementing only the losers, and one loop cheaper.
        pending = self.pending
        bits = self.bits
        modulus = self.modulus
        best_key = -1
        winner = 0
        mask = pending
        if self.strategy == 1:
            counter = self.counter
            while mask:
                bit = mask & -mask
                agent = bit.bit_length() - 1
                mask ^= bit
                aged = counter[agent]
                counter[agent] = aged + 1
                key = ((aged % modulus) << bits) | agent
                if key > best_key:
                    best_key = key
                    winner = agent
            counter[winner] -= 1
        else:
            tick = self.tick
            rtick = self.rtick
            while mask:
                bit = mask & -mask
                agent = bit.bit_length() - 1
                mask ^= bit
                key = (((tick - rtick[agent]) % modulus) << bits) | agent
                if key > best_key:
                    best_key = key
                    winner = agent
        return winner, 1, pending

    def arbitrate_keys(self) -> Tuple[int, int, int, Dict[int, int]]:
        """:meth:`arbitrate`, also returning the applied key map.

        Keys are snapshotted *before* strategy 1's loser increments, as
        on the real lines; an anomalous pass still ages the losers.
        """
        pending = self.pending
        bits = self.bits
        modulus = self.modulus
        keys: Dict[int, int] = {}
        best_key = -1
        winner = 0
        mask = pending
        if self.strategy == 1:
            counter = self.counter
            while mask:
                bit = mask & -mask
                agent = bit.bit_length() - 1
                mask ^= bit
                key = ((counter[agent] % modulus) << bits) | agent
                keys[agent] = key
                if key > best_key:
                    best_key = key
                    winner = agent
            # Every loser ages by one arbitration (strategy 1's pulse).
            mask = pending & ~(1 << winner)
            while mask:
                bit = mask & -mask
                counter[bit.bit_length() - 1] += 1
                mask ^= bit
        else:
            tick = self.tick
            rtick = self.rtick
            while mask:
                bit = mask & -mask
                agent = bit.bit_length() - 1
                mask ^= bit
                key = (((tick - rtick[agent]) % modulus) << bits) | agent
                keys[agent] = key
                if key > best_key:
                    best_key = key
                    winner = agent
        return winner, 1, pending, keys

    def grant(self, agent_id: int) -> float:
        self.pending &= ~(1 << agent_id)
        return self.issue[agent_id]


class _FixedPriorityKernel:
    """Static daisy-chain baseline: highest pending identity wins."""

    __slots__ = ("num_agents", "pending", "issue")

    def __init__(self, num_agents: int) -> None:
        self.num_agents = num_agents
        self.pending = 0
        self.issue = [0.0] * (num_agents + 1)

    def request(self, agent_id: int, now: float) -> None:
        self.pending |= 1 << agent_id
        self.issue[agent_id] = now

    def arbitrate(self) -> Tuple[int, int, int]:
        pending = self.pending
        return pending.bit_length() - 1, 1, pending

    def arbitrate_keys(self) -> Tuple[int, int, int, Dict[int, int]]:
        """:meth:`arbitrate`, also returning the applied key map.

        Without priority classing (guaranteed on the batch domain) the
        urgent bit is constant zero, so bare identities compete.
        """
        pending = self.pending
        return pending.bit_length() - 1, 1, pending, _identity_keys(pending)

    def grant(self, agent_id: int) -> float:
        self.pending &= ~(1 << agent_id)
        return self.issue[agent_id]


_KERNELS = {
    "rr": lambda n: _RoundRobinKernel(n, 1),
    "rr-impl2": lambda n: _RoundRobinKernel(n, 2),
    "rr-impl3": lambda n: _RoundRobinKernel(n, 3),
    "fcfs": lambda n: _FcfsKernel(n, 1),
    "fcfs-aincr": lambda n: _FcfsKernel(n, 2),
    "fixed": lambda n: _FixedPriorityKernel(n),
}

#: Kernel implementation family of each batch protocol.  A super-batch
#: advances its lanes family by family, so one lockstep pass runs one
#: kernel class over every lane of that family.
_KERNEL_FAMILY = {
    "rr": "rr",
    "rr-impl2": "rr",
    "rr-impl3": "rr",
    "fcfs": "fcfs",
    "fcfs-aincr": "fcfs",
    "fixed": "fixed",
}


def kernel_family(protocol: str) -> str:
    """Kernel family a batch protocol's lanes are grouped under."""
    return _KERNEL_FAMILY[protocol]


def _mask_ids(mask: int) -> Tuple[int, ...]:
    """Decode a pending bitmask into a sorted agent-id tuple."""
    ids = []
    while mask:
        bit = mask & -mask
        ids.append(bit.bit_length() - 1)
        mask ^= bit
    return tuple(ids)


# ---------------------------------------------------------------------------
# Capability gating
# ---------------------------------------------------------------------------


def batch_capable(
    scenario: ScenarioSpec,
    protocol: str,
    settings: "SimulationSettings",
) -> Tuple[bool, str]:
    """Whether (scenario, protocol, settings) fits the batch engine.

    Returns ``(capable, reason)``; ``reason`` names the first violated
    restriction (empty when capable).  Callers that want transparent
    behaviour fall back to the event-driven engine when not capable.

    Fault plans are in-domain when the protocol's spec declares
    ``supports_batch_faults`` and every planned kind is a bus-level
    fault the spec admits; a watchdog policy alone (no plan) is always
    in-domain, since clean runs never consult it.
    """
    spec = get_spec(protocol)
    if not spec.supports_batch or protocol not in _KERNELS:
        return False, f"protocol {protocol!r} has no batch kernel"
    for agent in scenario.agents:
        if agent.open_loop:
            return False, f"agent {agent.agent_id} is open-loop"
        if agent.max_outstanding != 1:
            return False, f"agent {agent.agent_id} has max_outstanding > 1"
        if agent.priority_fraction > 0.0:
            return False, f"agent {agent.agent_id} uses priority classing"
    if settings.timing.clock_period > 0.0:
        return False, "synchronous bus timing"
    plan = settings.fault_plan
    if plan is not None and len(plan):
        if not spec.supports_batch_faults:
            return False, f"protocol {protocol!r} has no fault-domain batch kernel"
        outside = plan.kinds() - (spec.injectable_faults & BUS_LEVEL_FAULTS)
        if outside:
            names = ", ".join(sorted(kind.value for kind in outside))
            return False, f"fault kind(s) {names} are outside the batch domain"
    if settings.max_events is not None:
        return False, "max_events budget set"
    return True, ""


# ---------------------------------------------------------------------------
# One lane's state machine
# ---------------------------------------------------------------------------


class _Replication:
    """One lane's complete simulation state, calendar-free.

    The only "events" the restricted domain can generate are the next
    release, the next arbitration-complete, one pending kick, one
    request timer per agent and — with faults in-domain — one pending
    watchdog retry plus the plan's next point fault; each is a scalar
    timestamp (``inf`` when absent).  Dispatch picks the earliest,
    breaking timestamp ties by the calendar's priority order (release <
    arbitration-complete < request < kick = watchdog-retry < fault) and
    request-vs-request ties by insertion sequence — exactly the event
    calendar's rule, since at one instant at most one release /
    arbitration / kick / retry can be pending and a retry never
    coexists with a kick (the event model blocks kick scheduling for
    the whole recovery episode).
    """

    __slots__ = (
        "scenario",
        "protocol",
        "settings",
        "num_agents",
        "kernel",
        "collector",
        "sinks",
        "memory",
        "jsonl",
        "metrics",
        "txn",
        "arbt",
        "rngs",
        "dists",
        "buffers",
        "now",
        "t_rel",
        "t_arb",
        "t_kick",
        "t_retry",
        "t_fault",
        "t_req",
        "req_seq",
        "req_heap",
        "seq",
        "arb_winner",
        "busy",
        "pending_winner",
        "master",
        "master_issue",
        "master_grant",
        "busy_time",
        "transactions",
        "arb_index",
        "done",
        "np_treq",
        "active",
        "woke",
        "injector",
        "watchdog",
        "fault_actions",
        "fault_idx",
    )

    def __init__(
        self,
        scenario: ScenarioSpec,
        protocol: str,
        settings: "SimulationSettings",
    ) -> None:
        self.scenario = scenario
        self.protocol = protocol
        self.settings = settings
        num_agents = scenario.num_agents
        self.num_agents = num_agents
        self.kernel = _KERNELS[protocol](num_agents)
        self.collector = CompletionCollector(
            batches=settings.batches,
            batch_size=settings.batch_size,
            warmup=settings.warmup,
            keep_samples=settings.keep_samples,
            keep_order=settings.keep_order,
            keep_records=settings.keep_records,
        )
        self.memory = None
        self.jsonl = None
        self.metrics = None
        sinks: list = []
        telemetry = settings.telemetry
        if telemetry is not None:
            if telemetry.events:
                self.memory = InMemorySink()
                sinks.append(self.memory)
            if telemetry.jsonl_path is not None:
                self.jsonl = JsonlSink(telemetry.jsonl_path)
                sinks.append(self.jsonl)
            if telemetry.metrics:
                self.metrics = MetricsRegistry()
                sinks.append(MetricsSink(self.metrics))
        self.sinks = tuple(sinks)
        self.txn = settings.timing.transaction_time
        self.arbt = settings.timing.arbitration_time

        # Fault wiring, mirroring run_simulation's event path: a
        # non-empty plan implies a watchdog (settings.watchdog overrides
        # its policy); a policy alone still attaches one.
        plan = settings.fault_plan
        injector: Optional[FaultInjector] = None
        watchdog: Optional[BusWatchdog] = None
        if plan is not None and len(plan):
            injector = FaultInjector(plan)
            watchdog = BusWatchdog(settings.watchdog)
        elif settings.watchdog is not None:
            watchdog = BusWatchdog(settings.watchdog)
        if watchdog is not None:
            watchdog.bind(self.collector)
        self.injector = injector
        self.watchdog = watchdog
        # The plan's point faults, as a time-sorted action list replacing
        # the calendar events FaultInjector.attach would schedule: one
        # (time, is_drop, event) pair per dropout window.  The stable
        # sort preserves the plan's scheduling order for equal times —
        # the calendar's insertion-sequence rule at equal priority.
        actions: List[Tuple[float, bool, FaultEvent]] = []
        if injector is not None:
            for fevent in plan.events:
                if fevent.kind is FaultKind.AGENT_DROPOUT:
                    actions.append((max(0.0, fevent.time), True, fevent))
                    actions.append((max(0.0, fevent.end_time), False, fevent))
            actions.sort(key=lambda entry: entry[0])
        self.fault_actions = actions
        self.fault_idx = 0
        self.t_fault = actions[0][0] if actions else _INF
        self.t_retry = _INF

        streams = RandomStreams(settings.seed)
        self.rngs = [None] * (num_agents + 1)
        self.dists = [None] * (num_agents + 1)
        self.buffers: List[list] = [[] for _ in range(num_agents + 1)]
        self.active = [True] * (num_agents + 1)
        self.woke = [False] * (num_agents + 1)
        self.t_req = [_INF] * (num_agents + 1)
        self.req_seq = [0] * (num_agents + 1)
        self.seq = 0
        use_numpy = _numpy_enabled(num_agents)
        heap: Optional[list] = None if use_numpy else []
        # Start every agent with one think period, in declaration order —
        # the same order BusSystem.run() starts them, so the streams and
        # the request-timer tie-break sequence numbers line up.
        for spec in scenario.agents:
            agent = spec.agent_id
            rng = streams.agent_stream(agent)
            self.rngs[agent] = rng
            self.dists[agent] = spec.interrequest
            buffer = self.buffers[agent]
            buffer.extend(spec.interrequest.sample_batch(rng, _THINK_BLOCK))
            buffer.reverse()
            t_first = 0.0 + buffer.pop()
            self.seq += 1
            if heap is None:
                self.t_req[agent] = t_first
                self.req_seq[agent] = self.seq
            else:
                heap.append((t_first, self.seq, agent))
        if heap is not None:
            heapify(heap)
        self.req_heap = heap

        self.now = 0.0
        self.t_rel = _INF
        self.t_arb = _INF
        self.t_kick = _INF
        self.arb_winner = 0
        self.busy = False
        self.pending_winner: Optional[int] = None
        self.master = 0
        self.master_issue = 0.0
        self.master_grant = 0.0
        self.busy_time = 0.0
        self.transactions = 0
        self.arb_index = 0
        self.done = False
        if use_numpy:
            self.np_treq = _np.array(self.t_req, dtype=_np.float64)
        else:
            self.np_treq = None

    def _next_request(self) -> Tuple[float, int]:
        """Earliest request timer on the numpy path, seq breaking ties."""
        tmin = float(self.np_treq.min())
        if tmin == _INF:
            return _INF, 0
        candidates = _np.flatnonzero(self.np_treq == tmin)
        if len(candidates) == 1:
            return tmin, int(candidates[0])
        req_seq = self.req_seq
        agent = min((int(c) for c in candidates), key=req_seq.__getitem__)
        return tmin, agent

    def advance(self, completions: int) -> bool:
        """Advance until ``completions`` more completions are recorded.

        Returns ``False`` once the lane is finished — the collector is
        satisfied, or the watchdog declared a permanent failure — and
        ``True`` while more work remains.

        The loop body keeps the whole machine state in locals (written
        back at every exit) and inlines the grant/kick handlers: this
        is the sweep bottleneck, and attribute traffic dominates once
        event objects are gone.
        """
        if self.done:
            return False
        collector = self.collector
        record_completion = collector.record_completion
        needed = collector.needed
        warmup_n = collector.warmup
        batch_size_n = collector.batch_size
        agent_totals = collector.agent_totals
        # The flag-free accumulation path is inlined in the RELEASE
        # branch; anything that retains per-completion artefacts goes
        # through the reference implementation.
        fast_record = not (collector.keep_order or collector.keep_records)
        kernel = self.kernel
        kernel_request = kernel.request
        kernel_arbitrate = kernel.arbitrate
        # Every kernel's grant body is `pending &= ~bit; return issue`,
        # and the RR/fixed request body is `pending |= bit; issue = now`
        # (FCFS adds counter/tick bookkeeping) — both are inlined below;
        # the method calls are measurable at two calls per completion.
        kernel_issue = kernel.issue
        simple_request = not isinstance(kernel, _FcfsKernel)
        t_req = self.t_req
        req_seq = self.req_seq
        req_heap = self.req_heap
        np_treq = self.np_treq
        buffers = self.buffers
        dists = self.dists
        rngs = self.rngs
        metrics = self.metrics
        sinks = self.sinks
        txn = self.txn
        arbt = self.arbt
        num_agents = self.num_agents
        active = self.active
        woke = self.woke
        injector = self.injector
        watchdog = self.watchdog
        faulty = injector is not None or watchdog is not None
        fault_actions = self.fault_actions
        fault_count = len(fault_actions)

        t_rel = self.t_rel
        t_arb = self.t_arb
        t_kick = self.t_kick
        t_retry = self.t_retry
        t_fault = self.t_fault
        fault_idx = self.fault_idx
        seq = self.seq
        arb_winner = self.arb_winner
        busy = self.busy
        pending_winner = self.pending_winner
        master = self.master
        master_issue = self.master_issue
        master_grant = self.master_grant
        busy_time = self.busy_time
        transactions = self.transactions
        arb_index = self.arb_index
        now = self.now
        recorded = 0
        # Earliest request timer, insertion order breaking time ties.
        # On the heap path the peek is cached across iterations and only
        # refreshed at the points that can move it: a pop (re-peek) or a
        # push of an earlier timer (equal times keep the cached head —
        # pushes carry ever-larger sequence numbers, and smaller seq
        # wins the tie).
        tr = _INF
        ra = 0
        if req_heap:
            head = req_heap[0]
            tr = head[0]
            ra = head[2]
        kick_now = False
        fast_absorb = req_heap is not None and not faulty
        while True:
            if fast_absorb and pending_winner is not None:
                # The next master is already latched, so until the
                # release fires nothing can schedule an arbitration,
                # kick or retry — the only dispatchable events are
                # request expiries, and their handler (sans the
                # suppressed kick guard) can absorb them without a full
                # dispatch round.  Strictly earlier only: a request at
                # exactly t_rel fires after the release, as in the
                # calendar's priority order.
                while tr < t_rel:
                    fire = tr
                    agent = ra
                    heappop(req_heap)
                    if req_heap:
                        head = req_heap[0]
                        tr = head[0]
                        ra = head[2]
                    else:
                        tr = _INF
                        ra = 0
                    if active[agent]:
                        if simple_request:
                            kernel.pending |= 1 << agent
                            kernel_issue[agent] = fire
                        else:
                            kernel_request(agent, fire)
                    else:
                        woke[agent] = True
            if req_heap is None:
                tr, ra = self._next_request()
            tmin = t_rel
            if t_arb < tmin:
                tmin = t_arb
            if tr < tmin:
                tmin = tr
            if t_kick < tmin:
                tmin = t_kick
            if t_retry < tmin:
                tmin = t_retry
            if t_fault < tmin:
                tmin = t_fault
            if tmin == _INF:
                self.busy_time = busy_time
                self.transactions = transactions
                self.fault_idx = fault_idx
                self.now = now
                self._close_sinks()
                raise SimulationError(
                    "simulation drained its event calendar before the collector "
                    "was satisfied; the scenario generates too few requests"
                )
            now = tmin
            if t_rel == tmin:  # RELEASE — ends the master's tenure
                agent = master
                issue = master_issue
                t_rel = _INF
                busy = False
                busy_time += txn
                transactions += 1
                if fast_record:
                    # Inline of CompletionCollector.record_completion's
                    # flag-free path — that method is the reference
                    # implementation, and the cross-engine differential
                    # suite pins this copy to it.  The call (plus its
                    # self-attribute traffic) is the single largest
                    # per-completion cost once dispatch is lean.
                    index = collector.total_recorded
                    collector.total_recorded = index + 1
                    if index < warmup_n:
                        collector._last_boundary_time = now
                    elif index < needed:
                        batch = collector._current
                        if batch is None or batch.count == batch_size_n:
                            collector._open_batch(
                                (index - warmup_n) // batch_size_n
                            )
                            batch = collector._current
                        waiting = now - issue
                        batch.count += 1
                        batch.sum_waiting += waiting
                        batch.sum_waiting_sq += waiting * waiting
                        batch.sum_queueing += master_grant - issue
                        counts = batch.agent_counts
                        counts[agent] = counts.get(agent, 0) + 1
                        agent_totals[agent] = agent_totals.get(agent, 0) + 1
                        if batch.samples is not None:
                            batch.samples.append(waiting)
                        batch.end_time = now
                        if batch.count == batch_size_n:
                            collector._last_boundary_time = now
                else:
                    record_completion(agent, issue, master_grant, now)
                if metrics is not None:
                    metrics.counter("completions").increment()
                    metrics.histogram(f"wait.agent.{agent}", WAIT_BUCKETS).observe(
                        now - issue
                    )
                # Closed loop: the agent draws its next think period now
                # (even while dropped out — its timer then wakes it).
                buffer = buffers[agent]
                if not buffer:
                    buffer.extend(dists[agent].sample_batch(rngs[agent], _THINK_BLOCK))
                    buffer.reverse()
                t_next = now + buffer.pop()
                seq += 1
                if req_heap is not None:
                    heappush(req_heap, (t_next, seq, agent))
                    if t_next < tr:
                        tr = t_next
                        ra = agent
                else:
                    t_req[agent] = t_next
                    np_treq[agent] = t_next
                    req_seq[agent] = seq
                    if t_next < tr:
                        tr = t_next
                        ra = agent
                recorded += 1
                if collector.total_recorded >= needed:  # inlined satisfied()
                    # The event engine's post-event effects (inline grant
                    # of a pending winner, a same-instant kick) never run
                    # another event after the stop rule fires, so they
                    # are unobservable; the run ends here.
                    self.busy_time = busy_time
                    self.transactions = transactions
                    self.seq = seq
                    self.arb_index = arb_index
                    self.fault_idx = fault_idx
                    self.now = now
                    self.done = True
                    self._close_sinks()
                    return False
                if pending_winner is not None:
                    # inline grant of the already-arbitrated next master
                    kernel.pending &= ~(1 << pending_winner)
                    master_issue = kernel_issue[pending_winner]
                    if watchdog is not None:
                        watchdog.on_clean_grant(now)
                    busy = True
                    master = pending_winner
                    pending_winner = None
                    master_grant = now
                    t_rel = now + txn
                    if t_kick == _INF and t_arb == _INF and t_retry == _INF:
                        if not faulty and tr > now:
                            kick_now = True
                        else:
                            t_kick = now
                elif t_kick == _INF and t_arb == _INF and t_retry == _INF:
                    if not faulty and tr > now:
                        kick_now = True
                    else:
                        t_kick = now
            elif t_arb == tmin:  # ARBITRATION-COMPLETE — the lines settled
                t_arb = _INF
                if busy:
                    pending_winner = arb_winner
                else:  # idle self-timed bus: hand over immediately
                    kernel.pending &= ~(1 << arb_winner)
                    master_issue = kernel_issue[arb_winner]
                    if watchdog is not None:
                        watchdog.on_clean_grant(now)
                    busy = True
                    master = arb_winner
                    pending_winner = None
                    master_grant = now
                    t_rel = now + txn
                    if t_kick == _INF and t_retry == _INF:
                        if not faulty and tr > now:
                            kick_now = True
                        else:
                            t_kick = now
            elif tr == tmin:  # REQUEST — an agent's think timer expires
                agent = ra
                if req_heap is not None:
                    heappop(req_heap)
                    if req_heap:
                        head = req_heap[0]
                        tr = head[0]
                        ra = head[2]
                    else:
                        tr = _INF
                        ra = 0
                else:
                    t_req[agent] = _INF
                    np_treq[agent] = _INF
                if active[agent]:
                    if simple_request:
                        kernel.pending |= 1 << agent
                        kernel_issue[agent] = now
                    else:
                        kernel_request(agent, now)
                    if (
                        t_kick == _INF
                        and t_arb == _INF
                        and t_retry == _INF
                        and pending_winner is None
                    ):
                        if not faulty and tr > now:
                            kick_now = True
                        else:
                            t_kick = now
                else:
                    # Dropped out: swallow the expiry, remember it so
                    # rejoin restarts the generation loop (BusAgent).
                    woke[agent] = True
            elif t_kick == tmin or t_retry == tmin:
                # ARB_KICK / WATCHDOG-RETRY — competitor snapshot at the
                # instant's end.  The two share the calendar priority and
                # the same handler body (_arb_kick and _watchdog_retry
                # both land in _maybe_start_arbitration) and are never
                # pending together.
                if t_kick == tmin:
                    t_kick = _INF
                else:
                    t_retry = _INF
                if t_arb == _INF and pending_winner is None and kernel.pending:
                    if not faulty:
                        winner, rounds, competitors = kernel_arbitrate()
                        settle = arbt * rounds
                        if sinks:
                            event = ArbitrationEvent(
                                index=arb_index,
                                time=now,
                                competitors=_mask_ids(competitors),
                                winner=winner,
                                rounds=rounds,
                                settle_time=settle,
                            )
                            arb_index += 1
                            for sink in sinks:
                                sink.emit(event)
                        t_settled = now + settle
                        if busy and t_settled < t_rel:
                            # The current master still owns the bus when
                            # the lines settle, so the arbitration-
                            # complete event's only effect would be to
                            # latch the winner — fold it into this
                            # instant and save a dispatch round per
                            # saturated transaction.  Strict `<`: at a
                            # settle/release tie the calendar fires the
                            # release first and the arbitration lands on
                            # an idle bus, a different handler.
                            pending_winner = winner
                        else:
                            arb_winner = winner
                            t_arb = t_settled
                    else:
                        # Fault-domain pass: expose the applied keys,
                        # perturb them, and route anomalies through the
                        # watchdog — mirroring _maybe_start_arbitration.
                        winner, rounds, competitors, keys = kernel.arbitrate_keys()
                        settle = arbt * rounds
                        anomaly = None
                        fault_tags: Tuple[str, ...] = ()
                        if injector is not None:
                            perturbed = injector.perturb(
                                ArbitrationOutcome(
                                    winner=winner,
                                    rounds=rounds,
                                    competitors=frozenset(keys),
                                    keys=keys,
                                ),
                                now,
                            )
                            anomaly = perturbed.anomaly
                            if anomaly is None:
                                if perturbed.deviated:
                                    collector.record_deviation()
                                    fault_tags = ("deviated",)
                                winner = perturbed.winner
                        if anomaly is not None:
                            # Emit before consulting the watchdog: the
                            # event carries the episode's attempt count
                            # *before* this anomaly joined it.
                            if sinks:
                                event = ArbitrationEvent(
                                    index=arb_index,
                                    time=now,
                                    competitors=_mask_ids(competitors),
                                    winner=None,
                                    rounds=rounds,
                                    settle_time=settle,
                                    anomaly=anomaly,
                                    watchdog_attempt=watchdog.attempts,
                                )
                                arb_index += 1
                                for sink in sinks:
                                    sink.emit(event)
                            delay = watchdog.on_anomaly(anomaly, now)
                            if delay is None:
                                # Retry budget exhausted: permanent
                                # failure ends the lane, as run()'s stop
                                # rule would at the same instant.
                                self.busy_time = busy_time
                                self.transactions = transactions
                                self.seq = seq
                                self.arb_index = arb_index
                                self.fault_idx = fault_idx
                                self.now = now
                                self.done = True
                                self._close_sinks()
                                return False
                            t_retry = now + settle + delay
                        else:
                            if sinks:
                                event = ArbitrationEvent(
                                    index=arb_index,
                                    time=now,
                                    competitors=_mask_ids(competitors),
                                    winner=winner,
                                    rounds=rounds,
                                    settle_time=settle,
                                    watchdog_attempt=(
                                        watchdog.attempts
                                        if watchdog is not None
                                        else 0
                                    ),
                                    fault_tags=fault_tags,
                                )
                                arb_index += 1
                                for sink in sinks:
                                    sink.emit(event)
                            t_settled = now + settle
                            if busy and t_settled < t_rel:
                                # Same fusion as the fault-free path: a
                                # clean (or deviated) outcome on a busy
                                # bus only latches the winner.
                                pending_winner = winner
                            else:
                                arb_winner = winner
                                t_arb = t_settled
            else:  # FAULT — the plan's next dropout / hot re-insertion
                _, is_drop, fevent = fault_actions[fault_idx]
                fault_idx += 1
                t_fault = (
                    fault_actions[fault_idx][0]
                    if fault_idx < fault_count
                    else _INF
                )
                aid = fevent.agent_id
                present = 0 < aid <= num_agents and rngs[aid] is not None
                if is_drop:
                    if present and active[aid]:
                        # Asserted requests stay on the arbiter — the
                        # hardware cannot recall a request line; only
                        # new generation stops (BusAgent.drop_out).
                        active[aid] = False
                        injector.count_applied(fevent.kind)
                    else:
                        injector.count_skipped(fevent.kind)
                elif present and not active[aid]:
                    active[aid] = True
                    if woke[aid]:
                        # The think timer expired while absent: restart
                        # the generation loop with a fresh think period
                        # (BusAgent.rejoin).
                        woke[aid] = False
                        buffer = buffers[aid]
                        if not buffer:
                            buffer.extend(
                                dists[aid].sample_batch(rngs[aid], _THINK_BLOCK)
                            )
                            buffer.reverse()
                        t_next = now + buffer.pop()
                        seq += 1
                        if req_heap is not None:
                            heappush(req_heap, (t_next, seq, aid))
                            if t_next < tr:
                                tr = t_next
                                ra = aid
                        else:
                            t_req[aid] = t_next
                            np_treq[aid] = t_next
                            req_seq[aid] = seq
            if kick_now:
                # Same-instant kick fusion: the handler above scheduled
                # a kick "for now" and proved no other event shares the
                # timestamp (the earliest request timer is strictly
                # later, every other timer infinite), so the kick's
                # competitor snapshot is already final — run it in this
                # dispatch round instead of paying another.  Fault-
                # domain runs keep the scheduled kick; their handler
                # needs the full anomaly machinery.
                kick_now = False
                if kernel.pending:
                    winner, rounds, competitors = kernel_arbitrate()
                    settle = arbt * rounds
                    if sinks:
                        event = ArbitrationEvent(
                            index=arb_index,
                            time=now,
                            competitors=_mask_ids(competitors),
                            winner=winner,
                            rounds=rounds,
                            settle_time=settle,
                        )
                        arb_index += 1
                        for sink in sinks:
                            sink.emit(event)
                    t_settled = now + settle
                    if busy and t_settled < t_rel:
                        pending_winner = winner
                    else:
                        arb_winner = winner
                        t_arb = t_settled
            if recorded >= completions:
                break

        self.t_rel = t_rel
        self.t_arb = t_arb
        self.t_kick = t_kick
        self.t_retry = t_retry
        self.t_fault = t_fault
        self.fault_idx = fault_idx
        self.seq = seq
        self.arb_winner = arb_winner
        self.busy = busy
        self.pending_winner = pending_winner
        self.master = master
        self.master_issue = master_issue
        self.master_grant = master_grant
        self.busy_time = busy_time
        self.transactions = transactions
        self.arb_index = arb_index
        self.now = now
        return True

    def _close_sinks(self) -> None:
        if self.jsonl is not None:
            self.jsonl.close()
            self.jsonl = None

    def result(self) -> RunResult:
        utilization = self.busy_time / self.now if self.now > 0.0 else 0.0
        return RunResult(
            scenario=self.scenario,
            protocol=self.protocol,
            collector=self.collector,
            utilization=utilization,
            elapsed=self.now,
            seed=self.settings.seed,
            confidence=self.settings.confidence,
            failed=self.watchdog.gave_up if self.watchdog is not None else False,
            events=self.memory.events if self.memory is not None else None,
            metrics=self.metrics,
        )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def _require_capable(
    scenario: ScenarioSpec, protocol: str, settings: "SimulationSettings"
) -> None:
    capable, reason = batch_capable(scenario, protocol, settings)
    if not capable:
        raise ConfigurationError(
            f"batch engine cannot run {protocol!r} on scenario "
            f"{scenario.name!r}: {reason}"
        )


def _fresh_scenario(scenario: ScenarioSpec) -> ScenarioSpec:
    """A scenario safe to hand one lane exclusive use of.

    Renewal distributions are stateless (sampling is a pure function of
    the rng), so the shared object is already safe; only scenarios
    carrying stateful distributions — trace-replay cursors — need a
    private deep copy, and the copy is expensive enough to matter at
    lane-pack setup.
    """
    if any(agent.interrequest.stateful for agent in scenario.agents):
        return copy.deepcopy(scenario)
    return scenario


def run_simulation_batch(
    scenario: ScenarioSpec,
    protocol: str,
    settings: "SimulationSettings",
) -> RunResult:
    """Run one (scenario, protocol) cell on the batch engine.

    Raises :class:`~repro.errors.ConfigurationError` when the cell is
    outside the batch domain; use :func:`batch_capable` first (or go
    through :func:`repro.experiments.runner.run_simulation`, which falls
    back to the event engine transparently).
    """
    _require_capable(scenario, protocol, settings)
    replication = _Replication(scenario, protocol, settings)
    try:
        while replication.advance(_LOCKSTEP_BLOCK):
            pass
    finally:
        replication._close_sinks()
    return replication.result()


def run_lanes(
    cells: Sequence[Tuple[ScenarioSpec, str, "SimulationSettings"]],
) -> List[RunResult]:
    """Run heterogeneous cells as the lanes of one lockstep super-batch.

    ``cells`` may mix agent counts, loads, seeds, protocols and fault
    plans freely — every cell just has to be :func:`batch_capable` on
    its own.  Lanes are grouped by kernel family
    (:func:`kernel_family`), and the scheduler round-robins over the
    families, advancing each family's live lanes by one lockstep block
    per pass, so one pass runs one kernel implementation across all its
    lanes.  A lane deep-copies its scenario only when it carries
    stateful (trace-replay) distributions, which must not be shared
    between lanes built from one scenario object.

    Results are returned in ``cells`` order and are identical to
    independent :func:`run_simulation_batch` calls — lane packing, and
    therefore the order cells are handed in, cannot influence any
    observable (each lane owns all of its state; nothing is shared).
    """
    paths = [
        cell[2].telemetry.jsonl_path
        for cell in cells
        if cell[2].telemetry is not None
        and cell[2].telemetry.jsonl_path is not None
    ]
    if len(paths) != len(set(paths)):
        raise ConfigurationError(
            "run_lanes cannot share one telemetry jsonl_path across lanes; "
            "give each lane its own path"
        )
    for scenario, protocol, settings in cells:
        _require_capable(scenario, protocol, settings)
    lanes = [
        _Replication(_fresh_scenario(scenario), protocol, settings)
        for scenario, protocol, settings in cells
    ]
    families: Dict[str, List[_Replication]] = {}
    for lane in lanes:
        families.setdefault(_KERNEL_FAMILY[lane.protocol], []).append(lane)
    try:
        while any(families.values()):
            for family, group in families.items():
                if group:
                    families[family] = [
                        lane for lane in group if lane.advance(_LOCKSTEP_BLOCK)
                    ]
    finally:
        for lane in lanes:
            lane._close_sinks()
    return [lane.result() for lane in lanes]


def run_replications(
    scenario: ScenarioSpec,
    protocol: str,
    settings: "SimulationSettings",
    seeds: Sequence[int],
) -> List[RunResult]:
    """Run R replications of one cell in lockstep, one per seed.

    A convenience wrapper over :func:`run_lanes` for the homogeneous
    special case; results are returned in ``seeds`` order and are
    identical to R independent :func:`run_simulation` calls.
    """
    _require_capable(scenario, protocol, settings)
    telemetry = settings.telemetry
    if telemetry is not None and telemetry.jsonl_path is not None and len(seeds) > 1:
        raise ConfigurationError(
            "run_replications cannot share one telemetry jsonl_path across "
            f"{len(seeds)} replications; run them individually"
        )
    return run_lanes(
        [(scenario, protocol, replace(settings, seed=seed)) for seed in seeds]
    )

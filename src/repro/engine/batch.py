"""Lockstep batch-replication engine.

The event-driven engine (:mod:`repro.engine.simulator` driving
:class:`~repro.bus.model.BusSystem`) is fully general: it handles
synchronous clocking, priority classes, open-loop sources, fault
injection and the watchdog.  But the paper's *core* experiments —
closed-loop agents on a self-timed bus, no faults — have a rigidly
cyclic structure: request → arbitration rounds → tenure → release,
repeat.  For that restricted (and dominant) domain this module provides
a calendar-free engine that advances R independent replications of one
experiment cell in lockstep, amortising the Python interpreter overhead
that dominates replication-heavy sweeps (robustness grids, batch-means
confidence intervals).

Instead of a heap of :class:`~repro.engine.calendar.Event` objects, each
replication keeps a handful of scalar timers (pending release, pending
arbitration-complete, pending kick) plus flat per-agent arrays (next
request time, tie-break sequence, think-time buffers, FCFS counters) —
struct-of-arrays state with no per-event allocation.  Protocol kernels
operate on integer bitmasks of pending requesters, exploiting that every
batch-capable protocol resolves its arbitration with a pure max over
per-agent keys (the wired-OR maximum-finding of §2).

Correctness contract
--------------------
For every batch-capable protocol the engine reproduces the event-driven
engine *exactly*: identical winner sequences, identical
:class:`~repro.observability.events.ArbitrationEvent` streams, identical
collector statistics and identical floating-point timestamps, given the
same seed.  This holds because the dispatch loop replays the calendar's
ordering rule — (time, priority, insertion sequence) with RELEASE <
ARBITRATION < REQUEST < ARB_KICK — and every timestamp is computed by
the same floating-point expression (``now + delay``) the event engine
uses.  The cross-engine differential suite
(``tests/conformance/test_differential_engines.py``) and the batch
golden traces enforce the contract.

An optional numpy fast path accelerates the next-request-timer scan on
wide buses; it is feature-detected (runtime dependencies stay empty) and
can be forced on or off with ``REPRO_BATCH_NUMPY=1`` / ``=0``.
"""

from __future__ import annotations

import copy
import os
from dataclasses import replace
from math import inf as _INF
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.bus.agent import _THINK_BLOCK
from repro.core.base import identity_bits
from repro.engine.rng import RandomStreams
from repro.errors import ConfigurationError, SimulationError
from repro.observability.events import ArbitrationEvent
from repro.observability.metrics import WAIT_BUCKETS, MetricsRegistry, MetricsSink
from repro.observability.sinks import InMemorySink, JsonlSink
from repro.protocols.registry import get_spec
from repro.stats.collector import CompletionCollector
from repro.stats.summary import RunResult
from repro.workload.scenarios import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import SimulationSettings

__all__ = [
    "HAVE_NUMPY",
    "batch_capable",
    "run_simulation_batch",
    "run_replications",
]

try:  # feature check: numpy is an optional accelerator, never a dependency
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - depends on the environment
    _np = None
    HAVE_NUMPY = False

#: Agent count at which the numpy timer scan starts paying for itself
#: (below this, the pure-Python scan over a short list wins).
_NUMPY_MIN_AGENTS = 32

#: Completions each live replication advances per lockstep round.  Large
#: enough to amortise the round-robin over replications, small enough
#: that all replications stay within one round of each other.
_LOCKSTEP_BLOCK = 64


def _numpy_enabled(num_agents: int) -> bool:
    """Decide the timer-scan implementation for one replication."""
    forced = os.environ.get("REPRO_BATCH_NUMPY")
    if forced is not None:
        if forced.strip().lower() in ("1", "true", "yes", "on"):
            return HAVE_NUMPY
        return False
    return HAVE_NUMPY and num_agents >= _NUMPY_MIN_AGENTS


# ---------------------------------------------------------------------------
# Protocol kernels
# ---------------------------------------------------------------------------
#
# Each kernel mirrors one registry protocol's arbitration exactly, with
# the pending-request set held as a bitmask (bit i = agent i; agent ids
# start at 1, so bit 0 is always clear — the paper reserves identity 0).
# Every batch-capable arbiter's ``release`` is a no-op and its grant
# simply drops the winner's (single) outstanding request, so kernels
# only need ``request`` / ``arbitrate`` / ``grant``.


class _RoundRobinKernel:
    """Distributed round-robin, implementations 1–3 (priority-free).

    The event-engine arbiters build per-agent keys ``(rr_bit << k) | id``
    and take the wired-OR maximum; with unique identities that maximum
    is simply the highest id among the agents "below" the previous
    winner when any exist, else the highest id overall — a two-bitmask
    computation here.
    """

    __slots__ = ("num_agents", "impl", "pending", "last_winner", "issue")

    def __init__(self, num_agents: int, impl: int) -> None:
        self.num_agents = num_agents
        self.impl = impl
        self.pending = 0
        # Implementation 3 starts with the fictitious identity N+1 so the
        # very first pass already sees a non-empty "low" set.
        self.last_winner = num_agents + 1 if impl == 3 else 0
        self.issue = [0.0] * (num_agents + 1)

    def request(self, agent_id: int, now: float) -> None:
        self.pending |= 1 << agent_id
        self.issue[agent_id] = now

    def arbitrate(self) -> Tuple[int, int, int]:
        pending = self.pending
        low = pending & ((1 << self.last_winner) - 1)
        rounds = 1
        if self.impl == 1:
            competitors = pending
            winner = (low or pending).bit_length() - 1
        elif self.impl == 2:
            competitors = low or pending
            winner = competitors.bit_length() - 1
        else:  # impl 3: an empty low set costs one extra settle pass
            if low:
                competitors = low
            else:
                competitors = pending
                rounds = 2
            winner = competitors.bit_length() - 1
        self.last_winner = winner
        return winner, rounds, competitors

    def grant(self, agent_id: int) -> float:
        self.pending &= ~(1 << agent_id)
        return self.issue[agent_id]


class _FcfsKernel:
    """Distributed FCFS, counter strategies 1 (increment) and 2 (A-incr).

    Strategy 1 increments every loser's waiting counter after each
    arbitration; strategy 2 timestamps arrivals with a shared pulse tick
    (coincidence window 0, matching the event-engine default) and uses
    the tick age as the counter.  Keys are
    ``(counter % modulus) << k | id`` with ``modulus = 2**k``; the
    winner is the wired-OR maximum.
    """

    __slots__ = (
        "num_agents",
        "strategy",
        "bits",
        "modulus",
        "pending",
        "issue",
        "counter",
        "tick",
        "last_pulse",
        "rtick",
    )

    def __init__(self, num_agents: int, strategy: int) -> None:
        self.num_agents = num_agents
        self.strategy = strategy
        self.bits = identity_bits(num_agents)
        self.modulus = 1 << self.bits
        self.pending = 0
        self.issue = [0.0] * (num_agents + 1)
        self.counter = [0] * (num_agents + 1)
        self.tick = 0
        self.last_pulse = -_INF
        self.rtick = [0] * (num_agents + 1)

    def request(self, agent_id: int, now: float) -> None:
        self.pending |= 1 << agent_id
        self.issue[agent_id] = now
        if self.strategy == 1:
            self.counter[agent_id] = 0
        else:
            if now - self.last_pulse > 0.0:
                self.tick += 1
                self.last_pulse = now
            self.rtick[agent_id] = self.tick

    def arbitrate(self) -> Tuple[int, int, int]:
        pending = self.pending
        bits = self.bits
        modulus = self.modulus
        best_key = -1
        winner = 0
        mask = pending
        if self.strategy == 1:
            counter = self.counter
            while mask:
                bit = mask & -mask
                agent = bit.bit_length() - 1
                mask ^= bit
                key = ((counter[agent] % modulus) << bits) | agent
                if key > best_key:
                    best_key = key
                    winner = agent
            # Every loser ages by one arbitration (strategy 1's pulse).
            mask = pending & ~(1 << winner)
            while mask:
                bit = mask & -mask
                counter[bit.bit_length() - 1] += 1
                mask ^= bit
        else:
            tick = self.tick
            rtick = self.rtick
            while mask:
                bit = mask & -mask
                agent = bit.bit_length() - 1
                mask ^= bit
                key = (((tick - rtick[agent]) % modulus) << bits) | agent
                if key > best_key:
                    best_key = key
                    winner = agent
        return winner, 1, pending

    def grant(self, agent_id: int) -> float:
        self.pending &= ~(1 << agent_id)
        return self.issue[agent_id]


class _FixedPriorityKernel:
    """Static daisy-chain baseline: highest pending identity wins."""

    __slots__ = ("num_agents", "pending", "issue")

    def __init__(self, num_agents: int) -> None:
        self.num_agents = num_agents
        self.pending = 0
        self.issue = [0.0] * (num_agents + 1)

    def request(self, agent_id: int, now: float) -> None:
        self.pending |= 1 << agent_id
        self.issue[agent_id] = now

    def arbitrate(self) -> Tuple[int, int, int]:
        pending = self.pending
        return pending.bit_length() - 1, 1, pending

    def grant(self, agent_id: int) -> float:
        self.pending &= ~(1 << agent_id)
        return self.issue[agent_id]


_KERNELS = {
    "rr": lambda n: _RoundRobinKernel(n, 1),
    "rr-impl2": lambda n: _RoundRobinKernel(n, 2),
    "rr-impl3": lambda n: _RoundRobinKernel(n, 3),
    "fcfs": lambda n: _FcfsKernel(n, 1),
    "fcfs-aincr": lambda n: _FcfsKernel(n, 2),
    "fixed": lambda n: _FixedPriorityKernel(n),
}


def _mask_ids(mask: int) -> Tuple[int, ...]:
    """Decode a pending bitmask into a sorted agent-id tuple."""
    ids = []
    while mask:
        bit = mask & -mask
        ids.append(bit.bit_length() - 1)
        mask ^= bit
    return tuple(ids)


# ---------------------------------------------------------------------------
# Capability gating
# ---------------------------------------------------------------------------


def batch_capable(
    scenario: ScenarioSpec,
    protocol: str,
    settings: "SimulationSettings",
) -> Tuple[bool, str]:
    """Whether (scenario, protocol, settings) fits the batch engine.

    Returns ``(capable, reason)``; ``reason`` names the first violated
    restriction (empty when capable).  Callers that want transparent
    behaviour fall back to the event-driven engine when not capable.
    """
    spec = get_spec(protocol)
    if not spec.supports_batch or protocol not in _KERNELS:
        return False, f"protocol {protocol!r} has no batch kernel"
    for agent in scenario.agents:
        if agent.open_loop:
            return False, f"agent {agent.agent_id} is open-loop"
        if agent.max_outstanding != 1:
            return False, f"agent {agent.agent_id} has max_outstanding > 1"
        if agent.priority_fraction > 0.0:
            return False, f"agent {agent.agent_id} uses priority classing"
    if settings.timing.clock_period > 0.0:
        return False, "synchronous bus timing"
    if settings.fault_plan is not None and len(settings.fault_plan):
        return False, "fault injection enabled"
    if settings.watchdog is not None:
        return False, "watchdog attached"
    if settings.max_events is not None:
        return False, "max_events budget set"
    return True, ""


# ---------------------------------------------------------------------------
# One replication's state machine
# ---------------------------------------------------------------------------


class _Replication:
    """One replication's complete simulation state, calendar-free.

    The only "events" the restricted domain can generate are the next
    release, the next arbitration-complete, one pending kick and one
    request timer per agent; each is a scalar timestamp (``inf`` when
    absent).  Dispatch picks the earliest, breaking timestamp ties by
    the calendar's priority order (release < arbitration-complete <
    request < kick) and request-vs-request ties by insertion sequence —
    exactly the event calendar's rule, since at one instant at most one
    release / arbitration / kick can be pending.
    """

    __slots__ = (
        "scenario",
        "protocol",
        "settings",
        "num_agents",
        "kernel",
        "collector",
        "sinks",
        "memory",
        "jsonl",
        "metrics",
        "txn",
        "arbt",
        "rngs",
        "dists",
        "buffers",
        "now",
        "t_rel",
        "t_arb",
        "t_kick",
        "t_req",
        "req_seq",
        "seq",
        "arb_winner",
        "busy",
        "pending_winner",
        "master",
        "master_issue",
        "master_grant",
        "busy_time",
        "transactions",
        "arb_index",
        "done",
        "np_treq",
    )

    def __init__(
        self,
        scenario: ScenarioSpec,
        protocol: str,
        settings: "SimulationSettings",
    ) -> None:
        self.scenario = scenario
        self.protocol = protocol
        self.settings = settings
        num_agents = scenario.num_agents
        self.num_agents = num_agents
        self.kernel = _KERNELS[protocol](num_agents)
        self.collector = CompletionCollector(
            batches=settings.batches,
            batch_size=settings.batch_size,
            warmup=settings.warmup,
            keep_samples=settings.keep_samples,
            keep_order=settings.keep_order,
            keep_records=settings.keep_records,
        )
        self.memory = None
        self.jsonl = None
        self.metrics = None
        sinks: list = []
        telemetry = settings.telemetry
        if telemetry is not None:
            if telemetry.events:
                self.memory = InMemorySink()
                sinks.append(self.memory)
            if telemetry.jsonl_path is not None:
                self.jsonl = JsonlSink(telemetry.jsonl_path)
                sinks.append(self.jsonl)
            if telemetry.metrics:
                self.metrics = MetricsRegistry()
                sinks.append(MetricsSink(self.metrics))
        self.sinks = tuple(sinks)
        self.txn = settings.timing.transaction_time
        self.arbt = settings.timing.arbitration_time

        streams = RandomStreams(settings.seed)
        self.rngs = [None] * (num_agents + 1)
        self.dists = [None] * (num_agents + 1)
        self.buffers: List[list] = [[] for _ in range(num_agents + 1)]
        self.t_req = [_INF] * (num_agents + 1)
        self.req_seq = [0] * (num_agents + 1)
        self.seq = 0
        # Start every agent with one think period, in declaration order —
        # the same order BusSystem.run() starts them, so the streams and
        # the request-timer tie-break sequence numbers line up.
        for spec in scenario.agents:
            agent = spec.agent_id
            rng = streams.agent_stream(agent)
            self.rngs[agent] = rng
            self.dists[agent] = spec.interrequest
            buffer = self.buffers[agent]
            buffer.extend(spec.interrequest.sample_batch(rng, _THINK_BLOCK))
            buffer.reverse()
            self.t_req[agent] = 0.0 + buffer.pop()
            self.seq += 1
            self.req_seq[agent] = self.seq

        self.now = 0.0
        self.t_rel = _INF
        self.t_arb = _INF
        self.t_kick = _INF
        self.arb_winner = 0
        self.busy = False
        self.pending_winner: Optional[int] = None
        self.master = 0
        self.master_issue = 0.0
        self.master_grant = 0.0
        self.busy_time = 0.0
        self.transactions = 0
        self.arb_index = 0
        self.done = False
        if _numpy_enabled(num_agents):
            self.np_treq = _np.array(self.t_req, dtype=_np.float64)
        else:
            self.np_treq = None

    # -- handlers (mirroring BusSystem one-for-one) -----------------------

    def _schedule_kick(self, now: float) -> None:
        if self.t_kick != _INF or self.t_arb != _INF or self.pending_winner is not None:
            return
        self.t_kick = now  # self-timed bus: end of the current instant

    def _grant(self, agent_id: int, now: float) -> None:
        self.pending_winner = None
        self.master_issue = self.kernel.grant(agent_id)
        self.busy = True
        self.master = agent_id
        self.master_grant = now
        self.t_rel = now + self.txn
        self._schedule_kick(now)

    def _next_request(self) -> Tuple[float, int]:
        """Earliest request timer, insertion order breaking time ties."""
        t_req = self.t_req
        if self.np_treq is not None:
            tmin = float(self.np_treq.min())
            if tmin == _INF:
                return _INF, 0
            candidates = _np.flatnonzero(self.np_treq == tmin)
            if len(candidates) == 1:
                return tmin, int(candidates[0])
            req_seq = self.req_seq
            agent = min((int(c) for c in candidates), key=req_seq.__getitem__)
            return tmin, agent
        req_seq = self.req_seq
        best = 0
        tmin = _INF
        for agent in range(1, self.num_agents + 1):
            t = t_req[agent]
            if t < tmin or (t == tmin and t != _INF and req_seq[agent] < req_seq[best]):
                tmin = t
                best = agent
        return tmin, best

    def advance(self, completions: int) -> bool:
        """Advance until ``completions`` more completions are recorded.

        Returns ``False`` once the collector is satisfied (the
        replication is finished), ``True`` while more work remains.

        The loop body keeps the whole machine state in locals (written
        back at every exit) and inlines the grant/kick handlers: this
        is the sweep bottleneck, and attribute traffic dominates once
        event objects are gone.
        """
        if self.done:
            return False
        collector = self.collector
        record_completion = collector.record_completion
        satisfied = collector.satisfied
        kernel = self.kernel
        kernel_request = kernel.request
        kernel_grant = kernel.grant
        t_req = self.t_req
        req_seq = self.req_seq
        np_treq = self.np_treq
        buffers = self.buffers
        dists = self.dists
        rngs = self.rngs
        metrics = self.metrics
        sinks = self.sinks
        txn = self.txn
        arbt = self.arbt
        num_agents = self.num_agents
        agent_range = range(1, num_agents + 1)

        t_rel = self.t_rel
        t_arb = self.t_arb
        t_kick = self.t_kick
        seq = self.seq
        arb_winner = self.arb_winner
        busy = self.busy
        pending_winner = self.pending_winner
        master = self.master
        master_issue = self.master_issue
        master_grant = self.master_grant
        busy_time = self.busy_time
        transactions = self.transactions
        arb_index = self.arb_index
        now = self.now
        recorded = 0
        while True:
            # earliest request timer, insertion order breaking time ties
            if np_treq is None:
                ra = 0
                tr = _INF
                for agent in agent_range:
                    t = t_req[agent]
                    if t < tr or (t == tr and t != _INF and req_seq[agent] < req_seq[ra]):
                        tr = t
                        ra = agent
            else:
                tr, ra = self._next_request()
            tmin = t_rel
            if t_arb < tmin:
                tmin = t_arb
            if tr < tmin:
                tmin = tr
            if t_kick < tmin:
                tmin = t_kick
            if tmin == _INF:
                self.busy_time = busy_time
                self.transactions = transactions
                self.now = now
                self._close_sinks()
                raise SimulationError(
                    "simulation drained its event calendar before the collector "
                    "was satisfied; the scenario generates too few requests"
                )
            now = tmin
            if t_rel == tmin:  # RELEASE — ends the master's tenure
                agent = master
                issue = master_issue
                t_rel = _INF
                busy = False
                busy_time += txn
                transactions += 1
                record_completion(agent, issue, master_grant, now)
                if metrics is not None:
                    metrics.counter("completions").increment()
                    metrics.histogram(f"wait.agent.{agent}", WAIT_BUCKETS).observe(
                        now - issue
                    )
                # Closed loop: the agent draws its next think period now.
                buffer = buffers[agent]
                if not buffer:
                    buffer.extend(dists[agent].sample_batch(rngs[agent], _THINK_BLOCK))
                    buffer.reverse()
                t_next = now + buffer.pop()
                t_req[agent] = t_next
                if np_treq is not None:
                    np_treq[agent] = t_next
                seq += 1
                req_seq[agent] = seq
                recorded += 1
                if satisfied():
                    # The event engine's post-event effects (inline grant
                    # of a pending winner, a same-instant kick) never run
                    # another event after the stop rule fires, so they
                    # are unobservable; the run ends here.
                    self.busy_time = busy_time
                    self.transactions = transactions
                    self.seq = seq
                    self.arb_index = arb_index
                    self.now = now
                    self.done = True
                    self._close_sinks()
                    return False
                if pending_winner is not None:
                    # inline grant of the already-arbitrated next master
                    master_issue = kernel_grant(pending_winner)
                    busy = True
                    master = pending_winner
                    pending_winner = None
                    master_grant = now
                    t_rel = now + txn
                    if t_kick == _INF and t_arb == _INF:
                        t_kick = now
                elif t_kick == _INF and t_arb == _INF:
                    t_kick = now
                if recorded >= completions:
                    break
            elif t_arb == tmin:  # ARBITRATION-COMPLETE — the lines settled
                t_arb = _INF
                if busy:
                    pending_winner = arb_winner
                else:  # idle self-timed bus: hand over immediately
                    master_issue = kernel_grant(arb_winner)
                    busy = True
                    master = arb_winner
                    pending_winner = None
                    master_grant = now
                    t_rel = now + txn
                    if t_kick == _INF:
                        t_kick = now
            elif tr == tmin:  # REQUEST — an agent asserts its line
                t_req[ra] = _INF
                if np_treq is not None:
                    np_treq[ra] = _INF
                kernel_request(ra, now)
                if t_kick == _INF and t_arb == _INF and pending_winner is None:
                    t_kick = now
            else:  # ARB_KICK — competitor snapshot at instant's end
                t_kick = _INF
                if t_arb == _INF and pending_winner is None and kernel.pending:
                    winner, rounds, competitors = kernel.arbitrate()
                    settle = arbt * rounds
                    if sinks:
                        event = ArbitrationEvent(
                            index=arb_index,
                            time=now,
                            competitors=_mask_ids(competitors),
                            winner=winner,
                            rounds=rounds,
                            settle_time=settle,
                        )
                        arb_index += 1
                        for sink in sinks:
                            sink.emit(event)
                    arb_winner = winner
                    t_arb = now + settle

        self.t_rel = t_rel
        self.t_arb = t_arb
        self.t_kick = t_kick
        self.seq = seq
        self.arb_winner = arb_winner
        self.busy = busy
        self.pending_winner = pending_winner
        self.master = master
        self.master_issue = master_issue
        self.master_grant = master_grant
        self.busy_time = busy_time
        self.transactions = transactions
        self.arb_index = arb_index
        self.now = now
        return True

    def _close_sinks(self) -> None:
        if self.jsonl is not None:
            self.jsonl.close()
            self.jsonl = None

    def result(self) -> RunResult:
        utilization = self.busy_time / self.now if self.now > 0.0 else 0.0
        return RunResult(
            scenario=self.scenario,
            protocol=self.protocol,
            collector=self.collector,
            utilization=utilization,
            elapsed=self.now,
            seed=self.settings.seed,
            confidence=self.settings.confidence,
            events=self.memory.events if self.memory is not None else None,
            metrics=self.metrics,
        )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def _require_capable(
    scenario: ScenarioSpec, protocol: str, settings: "SimulationSettings"
) -> None:
    capable, reason = batch_capable(scenario, protocol, settings)
    if not capable:
        raise ConfigurationError(
            f"batch engine cannot run {protocol!r} on scenario "
            f"{scenario.name!r}: {reason}"
        )


def run_simulation_batch(
    scenario: ScenarioSpec,
    protocol: str,
    settings: "SimulationSettings",
) -> RunResult:
    """Run one (scenario, protocol) cell on the batch engine.

    Raises :class:`~repro.errors.ConfigurationError` when the cell is
    outside the batch domain; use :func:`batch_capable` first (or go
    through :func:`repro.experiments.runner.run_simulation`, which falls
    back to the event engine transparently).
    """
    _require_capable(scenario, protocol, settings)
    replication = _Replication(scenario, protocol, settings)
    try:
        while replication.advance(_LOCKSTEP_BLOCK):
            pass
    finally:
        replication._close_sinks()
    return replication.result()


def run_replications(
    scenario: ScenarioSpec,
    protocol: str,
    settings: "SimulationSettings",
    seeds: Sequence[int],
) -> List[RunResult]:
    """Run R replications of one cell in lockstep, one per seed.

    Each replication gets a deep copy of the scenario (stateful trace
    distributions must not be shared) and ``settings`` with its seed
    replaced; results are returned in ``seeds`` order and are identical
    to R independent :func:`run_simulation` calls.
    """
    _require_capable(scenario, protocol, settings)
    telemetry = settings.telemetry
    if telemetry is not None and telemetry.jsonl_path is not None and len(seeds) > 1:
        raise ConfigurationError(
            "run_replications cannot share one telemetry jsonl_path across "
            f"{len(seeds)} replications; run them individually"
        )
    replications = [
        _Replication(copy.deepcopy(scenario), protocol, replace(settings, seed=seed))
        for seed in seeds
    ]
    live = list(replications)
    try:
        while live:
            live = [rep for rep in live if rep.advance(_LOCKSTEP_BLOCK)]
    finally:
        for rep in replications:
            rep._close_sinks()
    return [rep.result() for rep in replications]

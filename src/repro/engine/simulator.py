"""The simulation event loop.

:class:`Simulator` owns the clock and the :class:`~repro.engine.calendar.
EventCalendar`; models schedule callbacks against it and the loop fires
them in time order until a stop condition holds.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.engine.calendar import EventCalendar
from repro.engine.event import Event, EventPriority
from repro.engine.trace import Trace
from repro.errors import SimulationError

__all__ = ["Simulator", "StopCondition"]

#: A predicate evaluated after every event; truthy stops the run.
StopCondition = Callable[[], bool]


class Simulator:
    """Event-driven simulation executive.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.engine.trace.Trace` to which every executed
        event is recorded.  Leave ``None`` for production runs.
    """

    def __init__(self, trace: Optional[Trace] = None) -> None:
        self.calendar = EventCalendar()
        self.trace = trace
        self._now = 0.0
        self._events_executed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total events fired since construction."""
        return self._events_executed

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = EventPriority.DEFAULT,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now.

        Raises
        ------
        SimulationError
            If ``delay`` is negative (the engine forbids scheduling into
            the past; zero delay is allowed and ordered by priority).
        """
        if delay < 0.0:
            raise SimulationError(f"negative delay {delay!r} for {label or action!r}")
        return self.calendar.schedule(self._now + delay, action, priority, label)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = EventPriority.DEFAULT,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``action`` at absolute time ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, already at {self._now!r}"
            )
        return self.calendar.schedule(time, action, priority, label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self.calendar.cancel(event)

    def step(self) -> bool:
        """Fire the single earliest event.

        Returns ``True`` if an event was fired, ``False`` if the calendar
        was empty.
        """
        if not self.calendar:
            return False
        event = self.calendar.pop()
        if event.time < self._now:
            raise SimulationError(
                f"event calendar returned past event at {event.time} < {self._now}"
            )
        self._now = event.time
        if self.trace is not None:
            self.trace.record(
                event.time,
                event.label or getattr(event.action, "__name__", "event"),
                event.priority,
            )
        self._events_executed += 1
        event.fire()
        return True

    def run(
        self,
        until: Optional[float] = None,
        stop: Optional[StopCondition] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the calendar drains or a limit is reached.

        Parameters
        ----------
        until:
            Hard time horizon; events strictly after it are left queued and
            the clock is advanced to ``until``.
        stop:
            Predicate checked after every event; truthy ends the run.
        max_events:
            Safety valve for runaway models; exceeding it raises
            :class:`~repro.errors.SimulationError`.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        executed_at_entry = self._events_executed
        try:
            if self.trace is None:
                self._run_untraced(until, stop, max_events, executed_at_entry)
                return
            while self.calendar:
                next_time = self.calendar.peek_time()
                if until is not None and next_time is not None and next_time > until:
                    self._now = max(self._now, until)
                    return
                self.step()
                if stop is not None and stop():
                    return
                if (
                    max_events is not None
                    and self._events_executed - executed_at_entry >= max_events
                ):
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def _run_untraced(
        self,
        until: Optional[float],
        stop: Optional[StopCondition],
        max_events: Optional[int],
        executed_at_entry: int,
    ) -> None:
        """The production event loop: no per-event trace bookkeeping.

        Semantically identical to the traced loop in :meth:`run`, but with
        the pop inlined and the trace branch hoisted out entirely — this
        loop dominates every simulation's profile, so it pays to keep the
        per-event work down to the pop, the clock update and the action.
        """
        calendar = self.calendar
        pop = calendar.pop
        while calendar:
            if until is not None:
                next_time = calendar.peek_time()
                if next_time is not None and next_time > until:
                    self._now = max(self._now, until)
                    return
            event = pop()
            if event.time < self._now:
                raise SimulationError(
                    f"event calendar returned past event at {event.time} < {self._now}"
                )
            self._now = event.time
            self._events_executed += 1
            event.action()
            if stop is not None and stop():
                return
            if (
                max_events is not None
                and self._events_executed - executed_at_entry >= max_events
            ):
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
        if until is not None:
            self._now = max(self._now, until)

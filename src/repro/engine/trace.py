"""Bounded in-memory tracing of executed events.

Tracing is off by default (zero overhead beyond one ``if``) and exists for
debugging protocol interactions and for the test suite, which asserts on
exact event interleavings for small scenarios.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional

__all__ = ["Trace", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One executed event: when it fired and what it was."""

    time: float
    label: str
    priority: int

    def __str__(self) -> str:
        return f"[{self.time:10.4f}] {self.label}"


class Trace:
    """A ring buffer of :class:`TraceRecord`.

    Parameters
    ----------
    capacity:
        Maximum number of records retained; older records are evicted.
        ``None`` keeps everything (use only for short runs).
    """

    def __init__(self, capacity: Optional[int] = 10_000) -> None:
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)

    def record(self, time: float, label: str, priority: int) -> None:
        """Append one record."""
        self._records.append(TraceRecord(time, label, priority))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def labels(self) -> List[str]:
        """The labels of all retained records, oldest first."""
        return [record.label for record in self._records]

    def clear(self) -> None:
        """Drop all retained records."""
        self._records.clear()

    def matching(self, substring: str) -> List[TraceRecord]:
        """Records whose label contains ``substring``."""
        return [record for record in self._records if substring in record.label]

"""Bounded in-memory tracing of executed events.

Tracing is off by default (zero overhead beyond one ``if``) and exists for
debugging protocol interactions and for the test suite, which asserts on
exact event interleavings for small scenarios.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Union

__all__ = ["Trace", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One executed event: when it fired and what it was."""

    time: float
    label: str
    priority: int

    def __str__(self) -> str:
        return f"[{self.time:10.4f}] {self.label}"


class Trace:
    """A ring buffer of :class:`TraceRecord`.

    Once full, appending evicts the *oldest* record, so the buffer
    always holds the most recent ``capacity`` records in arrival order.
    The container protocol mirrors a list over that retained window:
    ``len(trace)`` is the retained count (never above ``capacity``),
    iteration yields oldest first, and ``trace[i]`` / ``trace[a:b]``
    index into the retained window — index 0 is the oldest *retained*
    record, not the first ever recorded.

    Parameters
    ----------
    capacity:
        Maximum number of records retained; older records are evicted.
        ``None`` disables eviction entirely: the buffer is unbounded
        and grows with the run, so reserve it for short runs or tests
        that must see every event.
    """

    def __init__(self, capacity: Optional[int] = 10_000) -> None:
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)

    @property
    def capacity(self) -> Optional[int]:
        """The retention bound, or ``None`` when unbounded."""
        return self._records.maxlen

    def record(self, time: float, label: str, priority: int) -> None:
        """Append one record."""
        self._records.append(TraceRecord(time, label, priority))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[TraceRecord, List[TraceRecord]]:
        """Index or slice the retained window, oldest first.

        Slices return plain lists (a ``deque`` does not slice), so
        ``trace[-5:]`` is the idiomatic "last five events".  Negative
        indices count from the newest record, as for a list.
        """
        if isinstance(index, slice):
            return list(self._records)[index]
        return self._records[index]

    def labels(self) -> List[str]:
        """The labels of all retained records, oldest first."""
        return [record.label for record in self._records]

    def clear(self) -> None:
        """Drop all retained records."""
        self._records.clear()

    def matching(self, substring: str) -> List[TraceRecord]:
        """Records whose label contains ``substring``."""
        return [record for record in self._records if substring in record.label]

"""Arbitration-as-a-service: the fault-tolerant job layer.

:class:`ArbitrationService` turns the synchronous session layer into a
multi-client serving system with the paper's own virtues — bounded
state, liveness under contention, graceful degradation:

- **admission** is a bounded queue with explicit backpressure
  (:mod:`repro.service.admission`): a full queue refuses the job with a
  ``retry_after`` hint, never buffers unboundedly;
- **execution** batches each dispatch gather through the session
  planner — cache hits replay from the shared content-addressed store,
  identical requests from different clients dedup to one run, lane-pack
  misses run as lockstep super-batches on the sharded process pool
  (:mod:`repro.service.shards`), per-cell misses fan out by content
  hash;
- **robustness** is the headline: per-job wall-clock deadlines and cell
  budgets enforced with cancellation, bounded replay with deterministic
  jittered backoff on worker crashes, degradation to serial in-process
  execution when the pool is irrecoverable, and the terminal-state
  guarantee — every accepted job finishes exactly one of
  ``done`` / ``failed`` / ``rejected`` / ``timeout``, carrying
  :class:`~repro.session.outcome.RunOutcome` provenance or a
  :class:`~repro.session.outcome.CellFailure` diagnostic;
- **observability**: ``service.*`` counters on a
  :class:`~repro.observability.metrics.MetricsRegistry` and JSONL
  lifecycle telemetry through the same
  :class:`~repro.observability.sinks.EventSink` protocol the simulation
  events use.

The service also satisfies the ``Session``/``SweepExecutor`` executor
duck type (``run_requests`` / ``simulate``), so an experiment grid can
be pointed at a running service unchanged.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, CancelledError, Future, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, ServiceError
from repro.observability.metrics import MetricsRegistry
from repro.observability.sinks import EventSink, JsonlSink
from repro.service.admission import AdmissionController
from repro.service.backoff import BackoffPolicy
from repro.service.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_REJECTED,
    JOB_TIMEOUT,
    Job,
    JobBudget,
    ServiceEvent,
)
from repro.service.shards import PAYLOAD_CELL, PAYLOAD_LANES, ShardPool, split_by_shard
from repro.session.control import RunControl
from repro.session.outcome import CellFailure, RunOutcome, SessionStats
from repro.session.planner import plan_runs
from repro.session.request import RunRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.cache import ResultCache
    from repro.experiments.runner import SimulationSettings
    from repro.stats.summary import RunResult
    from repro.workload.scenarios import ScenarioSpec

__all__ = ["ServiceConfig", "ArbitrationService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`ArbitrationService`.

    Attributes
    ----------
    queue_limit:
        Admission queue capacity (jobs); beyond it submissions are
        rejected with backpressure.
    gather_limit:
        Most jobs one dispatch gathers — the batching window that lets
        cross-client dedup and lane packing happen.
    shards / workers:
        Process-pool topology (see :class:`~repro.service.shards.
        ShardPool`).
    serial:
        Skip process pools entirely and execute in-process (bench
        harnesses, platforms without ``fork``).  Counted as neither a
        crash nor a degradation.
    max_replays:
        Times one payload may be replayed after worker crashes before
        it runs serially in-process instead.
    max_respawns:
        Cumulative shard respawns before the pool is declared
        irrecoverable and the service degrades to serial execution.
    backoff:
        Respawn/replay pacing (deterministic jittered exponential).
    default_deadline / default_max_cells:
        Budgets applied to jobs that do not bring their own.
    retry_after:
        Base backpressure hint (seconds), scaled by backlog.
    job_retention:
        Most finished jobs kept queryable in the registry.  Beyond it
        the oldest *terminal* jobs are evicted (their states fold into
        aggregate counts), so a long-running service holds bounded
        state however many jobs it has served; active jobs are never
        evicted.
    poll_interval:
        Dispatcher wait granularity: the bound on how stale a deadline
        check can be while futures are in flight.
    jsonl_path:
        When set (and no explicit sink is given), lifecycle telemetry
        streams as JSON lines to this path via a service-owned
        :class:`~repro.observability.sinks.JsonlSink`.
    """

    queue_limit: int = 64
    gather_limit: int = 16
    shards: int = 2
    workers: int = 1
    serial: bool = False
    max_replays: int = 1
    max_respawns: int = 4
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    default_deadline: Optional[float] = None
    default_max_cells: Optional[int] = None
    retry_after: float = 0.05
    poll_interval: float = 0.05
    job_retention: int = 1024
    jsonl_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.gather_limit < 1:
            raise ConfigurationError(
                f"gather_limit must be >= 1, got {self.gather_limit}"
            )
        if self.max_replays < 0:
            raise ConfigurationError(
                f"max_replays must be >= 0, got {self.max_replays}"
            )
        if self.poll_interval <= 0.0:
            raise ConfigurationError(
                f"poll_interval must be > 0, got {self.poll_interval}"
            )
        if self.job_retention < 1:
            raise ConfigurationError(
                f"job_retention must be >= 1, got {self.job_retention}"
            )
        if self.default_deadline is not None and self.default_deadline < 0.0:
            raise ConfigurationError(
                f"default_deadline must be >= 0, got {self.default_deadline}"
            )


class _Payload:
    """One unit of shard work: a cell or a lane pack, plus bookkeeping."""

    __slots__ = ("kind", "data", "indices", "shard", "replays", "gen")

    def __init__(self, kind: str, data, indices: List[int], shard: int) -> None:
        self.kind = kind
        self.data = data
        #: Positions in the gather's unique-request list this payload answers.
        self.indices = indices
        self.shard = shard
        self.replays = 0
        #: Shard-pool generation at submit time (crash-recovery dedup:
        #: one broken pool triggers one respawn, not one per payload).
        self.gen = -1


class ArbitrationService:
    """The fault-tolerant async job layer over the session stack.

    Parameters
    ----------
    cache:
        The shared content-addressed
        :class:`~repro.experiments.cache.ResultCache` every client's
        hits replay from; ``None`` disables caching (dedup within a
        gather still works).
    config:
        A :class:`ServiceConfig`; defaults are sized for a local
        many-client workload.
    sink:
        Lifecycle telemetry sink (any
        :class:`~repro.observability.sinks.EventSink`); overrides
        ``config.jsonl_path``.
    """

    def __init__(
        self,
        cache: Optional["ResultCache"] = None,
        config: Optional[ServiceConfig] = None,
        sink: Optional[EventSink] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.cache = cache
        self.metrics = MetricsRegistry()
        self.admission = AdmissionController(
            limit=self.config.queue_limit, retry_after=self.config.retry_after
        )
        self.pool = ShardPool(
            shards=self.config.shards,
            workers=self.config.workers,
            backoff=self.config.backoff,
            max_respawns=self.config.max_respawns,
        )
        if self.config.serial:
            self.pool.degraded = True
            self.pool.degraded_reason = "serial execution configured"
        #: Executor duck type: a service never overrides cell engines
        #: (the planner respects each request's own declaration), and it
        #: keeps the same :class:`SessionStats` accounting every other
        #: orchestrator exposes, so ``Session(executor=service)`` works.
        self.engine: Optional[str] = None
        self.stats = SessionStats()
        self._owns_sink = False
        if sink is None and self.config.jsonl_path is not None:
            sink = JsonlSink(self.config.jsonl_path)
            self._owns_sink = True
        self._sink = sink
        self._seq = 0
        self._jobs: Dict[str, Job] = {}
        #: Aggregate states of jobs evicted from the bounded registry.
        self._evicted: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._dispatcher: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._closing = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ArbitrationService":
        """Start the dispatcher thread (idempotent; submit() does this)."""
        with self._lock:
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop, name="repro-service", daemon=True
                )
                self._dispatcher.start()
        return self

    def close(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting work and shut the back end down.

        ``drain=True`` (default) lets already-queued jobs dispatch
        first; ``drain=False`` fails them terminally (``failed`` with a
        ``service stopped`` diagnostic) — either way no accepted job is
        left in a non-terminal state.
        """
        self._closing = True
        self.admission.close()
        if not drain:
            for job in self.admission.take(self.config.queue_limit * 2, timeout=0):
                self._fail(job, "service stopped before dispatch")
        if self._dispatcher is not None:
            self._stopped.wait(timeout)
            self._dispatcher.join(timeout)
        self.pool.close()
        if self._owns_sink and self._sink is not None:
            self._sink.close()

    def __enter__(self) -> "ArbitrationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        requests: Union[RunRequest, Sequence[RunRequest]],
        deadline: Optional[float] = None,
        max_cells: Optional[int] = None,
        tag: Optional[str] = None,
    ) -> Job:
        """Admit a job (one or more requests) and return it immediately.

        The returned :class:`~repro.service.jobs.Job` may already be
        terminal: ``rejected`` when the queue is full (backpressure —
        honour ``retry_after``) or the cell budget is exceeded.
        Otherwise it is ``queued`` and will reach a terminal state
        without further action from the caller.
        """
        if isinstance(requests, RunRequest):
            requests = [requests]
        budget = JobBudget(
            deadline=deadline if deadline is not None else self.config.default_deadline,
            max_cells=max_cells if max_cells is not None else self.config.default_max_cells,
        )
        with self._lock:
            job_id = f"job-{next(self._ids):06d}"
        job = Job(job_id, requests, budget=budget, tag=tag)
        with self._lock:
            self._jobs[job_id] = job
            self._evict_terminal_locked()
        if not job.requests:
            job._finish(JOB_DONE, outcomes=[])
            self._count("service.done")
            self._emit("terminal", job, "empty job")
            return job
        if budget.max_cells is not None and job.cells > budget.max_cells:
            job._finish(
                JOB_REJECTED,
                error=f"budget exceeded: {job.cells} cells > max_cells {budget.max_cells}",
            )
            self._count("service.rejected")
            self._emit("reject", job, "cell budget")
            return job
        if self._closing:
            job._finish(JOB_REJECTED, error="service is shutting down")
            self._count("service.rejected")
            self._emit("reject", job, "closing")
            return job
        retry_after = self.admission.offer(job)
        if retry_after is not None:
            job._finish(
                JOB_REJECTED,
                error=(
                    f"queue full ({self.admission.limit} jobs); "
                    f"retry in {retry_after:.3f}s"
                ),
                retry_after=retry_after,
            )
            self._count("service.rejected")
            self._emit("reject", job, "backpressure")
            return job
        self._count("service.queued")
        self._emit("admit", job)
        self.start()
        return job

    # -- observation ----------------------------------------------------------

    def job(self, job_id: str) -> Job:
        """The job registered under ``job_id`` (ServiceError if unknown).

        A terminal job older than the newest ``job_retention`` finishes
        is no longer queryable — its state lives on only in aggregate
        (:meth:`stats_snapshot`).
        """
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(
                f"unknown job id {job_id!r} (never submitted, or evicted "
                f"after the {self.config.job_retention}-job retention window)"
            ) from None

    def _evict_terminal_locked(self) -> None:
        """Cap the registry: oldest terminal jobs beyond the retention
        limit fold into :attr:`_evicted` (caller holds ``_lock``)."""
        excess = len(self._jobs) - self.config.job_retention
        if excess <= 0:
            return
        for job_id in [j for j, job in self._jobs.items() if job.terminal][:excess]:
            job = self._jobs.pop(job_id)
            self._evicted[job.state] = self._evicted.get(job.state, 0) + 1

    def stats_snapshot(self) -> dict:
        """JSON-safe service state: counters, backlog, pool health."""
        with self._lock:
            states: Dict[str, int] = dict(self._evicted)
            jobs = list(self._jobs.values())
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "counters": {
                name: counter.value
                for name, counter in self.metrics.counters().items()
            },
            "backlog": len(self.admission),
            "queue_limit": self.admission.limit,
            "high_water": self.admission.high_water,
            "jobs": states,
            "pool": self.pool.describe(),
        }

    # -- executor duck type ---------------------------------------------------

    def run_requests(
        self,
        requests: Sequence[RunRequest],
        control: Optional[RunControl] = None,
    ) -> List[RunOutcome]:
        """Submit one job for ``requests`` and block for its outcomes.

        Satisfies the executor duck type the experiment grids accept,
        so a grid can run against a service (shared cache, sharded
        pool) unchanged.  Raises on any non-``done`` terminal state.
        """
        deadline = None
        if control is not None and control.remaining() is not None:
            deadline = max(control.remaining(), 0.0)
        job = self.submit(list(requests), deadline=deadline)
        job.wait()
        if job.state != JOB_DONE:
            raise ServiceError(
                f"job {job.job_id} finished {job.state!r}: {job.error}"
            )
        assert job.outcomes is not None
        return job.outcomes

    def simulate(
        self,
        scenario: "ScenarioSpec",
        protocol: str,
        settings: Optional["SimulationSettings"] = None,
    ) -> "RunResult":
        """Single-run convenience: one request, one blocking job."""
        outcomes = self.run_requests([RunRequest(scenario, protocol, settings)])
        return outcomes[0].result

    # -- internals ------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).increment(amount)

    def _emit(self, kind: str, job: Optional[Job] = None, detail: str = "") -> None:
        if self._sink is None:
            return
        with self._lock:
            seq = self._seq
            self._seq += 1
        event = ServiceEvent(
            seq=seq,
            kind=kind,
            job_id=job.job_id if job is not None else "",
            state=job.state if job is not None else "",
            detail=detail,
        )
        try:
            self._sink.emit(event)
        except Exception:  # telemetry must never perturb the service
            pass

    def _fail(self, job: Job, error: str, failure: Optional[CellFailure] = None) -> None:
        job._finish(JOB_FAILED, error=error, failure=failure)
        if failure is not None:
            self.stats.failures.append(failure)
        self._count("service.failed")
        self._emit("terminal", job, error)

    def _expire(self, job: Job) -> None:
        job._finish(
            JOB_TIMEOUT,
            error=f"deadline expired after {job.budget.deadline:.3f}s",
        )
        self._count("service.deadline_exceeded")
        self._emit("deadline", job)

    def _dispatch_loop(self) -> None:
        try:
            while True:
                jobs = self.admission.take(
                    self.config.gather_limit, timeout=self.config.poll_interval
                )
                if not jobs:
                    if self.admission.closed and not len(self.admission):
                        return
                    continue
                try:
                    self._dispatch(jobs)
                except Exception as exc:
                    # The terminal-state guarantee's last line of defence:
                    # an unexpected orchestration error fails the whole
                    # gather loudly instead of stranding jobs.
                    detail = f"internal dispatch failure ({type(exc).__name__}: {exc})"
                    for job in jobs:
                        if not job.terminal:
                            self._fail(job, detail)
        finally:
            self._stopped.set()

    def _dispatch(self, jobs: List[Job]) -> None:
        """Run one gathered batch of jobs to their terminal states."""
        now = time.monotonic()
        live: List[Job] = []
        for job in jobs:
            if job.expired(now):
                self._expire(job)
            else:
                job._start()
                live.append(job)
        if not live:
            return
        self._emit("dispatch", detail=f"{len(live)} job(s)")

        # Cross-client dedup: one slot per distinct epoch-6 content hash.
        index_of: Dict[str, int] = {}
        unique: List[RunRequest] = []
        keys: List[str] = []
        slots: Dict[str, List[int]] = {}
        for job in live:
            slots[job.job_id] = []
            for request in job.requests:
                resolved = request.resolved()
                key = resolved.cache_key()
                uidx = index_of.get(key)
                if uidx is None:
                    uidx = len(unique)
                    index_of[key] = uidx
                    unique.append(resolved)
                    keys.append(key)
                else:
                    self._count("service.deduplicated")
                    self.stats.deduplicated += 1
                slots[job.job_id].append(uidx)

        plan = plan_runs(unique, cache=self.cache)
        results: List[Optional["RunResult"]] = [None] * len(unique)
        errors: Dict[int, str] = {}
        routes = [run.route for run in plan.runs]
        stored = [False] * len(unique)

        for run in plan.cached_runs:
            results[run.index] = run.cached
            self._count("service.cache_hits")
            self.stats.cache_hits += 1

        payloads = self._build_payloads(plan, unique, keys)
        if payloads:
            if self.pool.degraded:
                self._run_serial(payloads, live, unique, keys, results, errors, stored)
            else:
                self._run_pooled(payloads, live, unique, keys, results, errors, stored)

        self._finalise(live, slots, unique, keys, routes, results, errors, stored)

    def _build_payloads(self, plan, unique, keys) -> List[_Payload]:
        """Misses become shard payloads: lane packs per shard, cells solo."""
        payloads: List[_Payload] = []
        lane_idx = [run.index for run in plan.lane_runs]
        if lane_idx:
            for shard, positions in split_by_shard([keys[i] for i in lane_idx], self.pool):
                indices = [lane_idx[pos] for pos in positions]
                cells = tuple(unique[i].as_cell() for i in indices)
                payloads.append(_Payload(PAYLOAD_LANES, cells, indices, shard))
        for run in plan.direct_runs:
            index = run.index
            payloads.append(
                _Payload(
                    PAYLOAD_CELL,
                    unique[index].as_cell(),
                    [index],
                    self.pool.shard_for(keys[index]),
                )
            )
        return payloads

    def _store(self, index: int, result: "RunResult", keys, results, stored) -> None:
        results[index] = result
        if self.cache is not None:
            self.cache.put(keys[index], result)
            stored[index] = True
        self._count("service.executed")
        self.stats.executed += 1

    def _expire_due(self, live: List[Job]) -> None:
        now = time.monotonic()
        for job in live:
            if not job.terminal and job.expired(now):
                self._expire(job)

    def _owners_alive(self, payload: _Payload, live: List[Job], slots=None) -> bool:
        """True while any live job still needs one of the payload's cells."""
        needed = set(payload.indices)
        for job in live:
            if job.terminal:
                continue
            job_slots = slots.get(job.job_id, []) if slots else None
            if job_slots is None:
                return True
            if needed.intersection(job_slots):
                return True
        return False

    # -- serial (degraded) execution ------------------------------------------

    def _run_serial(self, payloads, live, unique, keys, results, errors, stored) -> None:
        """In-process execution: the irrecoverable-pool (or configured
        serial) path.  Deadlines are checked at every payload boundary
        (and between the cells of a demoted lane pack), so an expired
        job stops costing compute at the next cell boundary and the
        loop ends once no live job remains.
        """
        for payload in payloads:
            self._expire_due(live)
            if all(job.terminal for job in live):
                return
            try:
                out = self.pool.run_serial(payload.kind, payload.data)
            except Exception as exc:
                if payload.kind == PAYLOAD_LANES:
                    # Same demotion contract as the session layer: a lane
                    # pack that fails at runtime re-runs per cell so real
                    # per-cell errors surface individually.
                    self._serial_cells(payload, live, unique, keys, results, errors, stored)
                else:
                    errors[payload.indices[0]] = f"{type(exc).__name__}: {exc}"
                continue
            if payload.kind == PAYLOAD_LANES:
                for index, result in zip(payload.indices, out):
                    self._store(index, result, keys, results, stored)
            else:
                self._store(payload.indices[0], out, keys, results, stored)

    def _serial_cells(self, payload, live, unique, keys, results, errors, stored) -> None:
        """Per-cell serial re-run of a demoted lane pack.

        Deadline enforcement is per *job*, at every cell boundary:
        ``_expire_due`` times out the jobs that are over budget, and the
        loop stops only once every live job is terminal — a shared
        deadline would let the earliest-expiring job starve the others'
        remaining cells.
        """
        for index in payload.indices:
            self._expire_due(live)
            if all(job.terminal for job in live):
                return
            try:
                result = self.pool.run_serial(PAYLOAD_CELL, unique[index].as_cell())
            except Exception as exc:
                errors[index] = f"{type(exc).__name__}: {exc}"
            else:
                self._store(index, result, keys, results, stored)

    # -- pooled execution ------------------------------------------------------

    def _run_pooled(self, payloads, live, unique, keys, results, errors, stored) -> None:
        """Sharded process-pool execution with crash recovery.

        A ``BrokenProcessPool`` from any future triggers the failure
        ladder: respawn the shard (backoff-paced) and replay the
        payload at most ``max_replays`` times, then run it serially
        in-process; if the respawn budget is exhausted the whole pool
        degrades and the remaining payloads run serially.  Futures
        whose every interested job has expired are cancelled.
        """
        pending: Dict[Future, _Payload] = {}
        backlog: List[_Payload] = list(payloads)
        while backlog:
            payload = backlog.pop(0)
            if not self._submit_payload(payload, pending):
                # Pool refused at submit time: degrade and run the rest
                # (this payload included) serially.
                remaining = [payload] + backlog
                self._degrade_now("process pool unavailable at submit")
                self._run_serial(remaining, live, unique, keys, results, errors, stored)
                backlog = []
        while pending:
            done, _ = wait(
                set(pending), timeout=self.config.poll_interval,
                return_when=FIRST_COMPLETED,
            )
            self._expire_due(live)
            if all(job.terminal for job in live):
                for future in pending:
                    future.cancel()
                # Completed results are still harvested below so the
                # shared cache keeps deterministic work already paid for.
            for future in list(done):
                # A recovery earlier in this round may have drained the
                # future's whole shard already (see _drain_shard).
                payload = pending.pop(future, None)
                if payload is None:
                    continue
                try:
                    out = future.result()
                except CancelledError:
                    # Degradation cancels queued futures pool-wide; a
                    # payload some live job still needs runs serially
                    # instead of being dropped.  (When every job is
                    # terminal — the other source of cancellation —
                    # _run_serial returns without doing work.)
                    self._run_serial(
                        [payload], live, unique, keys, results, errors, stored
                    )
                except BrokenExecutor as exc:
                    self._count("service.crashes")
                    self.pool.note_crash()
                    self._recover(
                        payload, exc, pending, live, unique, keys, results, errors, stored
                    )
                except Exception as exc:
                    if payload.kind == PAYLOAD_LANES:
                        self._serial_cells(
                            payload, live, unique, keys, results, errors, stored
                        )
                    else:
                        errors[payload.indices[0]] = f"{type(exc).__name__}: {exc}"
                else:
                    if payload.kind == PAYLOAD_LANES:
                        for index, result in zip(payload.indices, out):
                            self._store(index, result, keys, results, stored)
                    else:
                        self._store(payload.indices[0], out, keys, results, stored)
            if all(job.terminal for job in live) and not any(
                not future.cancelled() for future in pending
            ):
                return

    def _submit_payload(self, payload: _Payload, pending: Dict[Future, _Payload]) -> bool:
        try:
            payload.gen = self.pool.generation(payload.shard)
            future = self.pool.submit(payload.shard, payload.kind, payload.data)
        except Exception:
            return False
        pending[future] = payload
        return True

    def _degrade_now(self, reason: str) -> None:
        if not self.pool.degraded:
            self.pool.degrade(reason)
            self._count("service.degraded")
            self._emit("degrade", detail=reason)

    def _drain_shard(self, shard, pending, keys, results, stored) -> List[_Payload]:
        """Pop every pending future of ``shard``; the payloads that still
        need to run come back, results that completed before the shard
        broke are harvested in place."""
        dead: List[_Payload] = []
        for future in list(pending):
            if pending[future].shard != shard:
                continue
            payload = pending.pop(future)
            if future.cancel() or future.cancelled() or not future.done():
                # Never started, or stranded mid-run on a broken pool:
                # either way the worker result is unreachable, and the
                # serial re-run recomputes the same deterministic bytes.
                dead.append(payload)
            elif future.exception() is not None:
                dead.append(payload)
            elif payload.kind == PAYLOAD_LANES:
                for index, result in zip(payload.indices, future.result()):
                    self._store(index, result, keys, results, stored)
            else:
                self._store(payload.indices[0], future.result(), keys, results, stored)
        return dead

    def _recover(
        self, payload, exc, pending, live, unique, keys, results, errors, stored
    ) -> None:
        """The crash ladder for one broken payload (see class docstring)."""
        detail = f"{type(exc).__name__}: {exc}"
        if payload.replays >= self.config.max_replays:
            # Replayed already and crashed again: this payload gets no
            # more worker attempts — run it serially, in-process, where
            # a crash cannot recur (the kill arming is not consulted).
            self._emit("retry", detail=f"serial replay after repeated crash ({detail})")
            self._run_serial([payload], live, unique, keys, results, errors, stored)
            return
        if payload.gen == self.pool.generation(payload.shard) and not self.pool.respawn(
            payload.shard
        ):
            # (A stale generation means the shard was already respawned
            # for this very crash — one break fails every queued future
            # of the shard at once — so the payload just replays on the
            # replacement below without spending another respawn.)
            self._degrade_now(f"respawn budget exhausted ({detail})")
            # Everything this shard still had pending is known-dead:
            # pull it all out now — harvesting whatever completed
            # before the break — and run the rest serially.  Futures
            # already *running* on other shards keep going and are
            # harvested by the main loop; their still-queued siblings,
            # cancelled by the pool-wide degrade, re-route to serial in
            # the harvest loop's CancelledError arm.
            remaining = [payload] + self._drain_shard(
                payload.shard, pending, keys, results, stored
            )
            self._run_serial(remaining, live, unique, keys, results, errors, stored)
            return
        payload.replays += 1
        self._count("service.retried")
        for job in live:
            if not job.terminal:
                job.attempts += 1
        self._emit("retry", detail=f"replay {payload.replays} after {detail}")
        if not self._submit_payload(payload, pending):
            self._degrade_now("process pool unavailable on replay")
            self._run_serial([payload], live, unique, keys, results, errors, stored)

    # -- finalisation ----------------------------------------------------------

    def _finalise(self, live, slots, unique, keys, routes, results, errors, stored) -> None:
        """Every still-running job gets its terminal state and provenance."""
        for job in live:
            if job.terminal:
                continue
            outcomes: List[RunOutcome] = []
            failure: Optional[CellFailure] = None
            for slot, uidx in enumerate(slots[job.job_id]):
                error = errors.get(uidx)
                if error is None and results[uidx] is None:
                    error = "result unavailable (cell never completed)"
                if error is not None:
                    failure = CellFailure(
                        index=slot,
                        tag=job.tag,
                        protocol=unique[uidx].protocol,
                        scenario=unique[uidx].scenario.name,
                        error=error,
                        first_error=error,
                    )
                    break
                outcomes.append(
                    RunOutcome(
                        request=unique[uidx],
                        result=results[uidx],
                        route=routes[uidx],
                        cache_key=keys[uidx],
                        stored=stored[uidx],
                    )
                )
            if failure is not None:
                self._fail(job, str(failure), failure)
            else:
                job._finish(JOB_DONE, outcomes=outcomes)
                self._count("service.done")
                self._emit("terminal", job)

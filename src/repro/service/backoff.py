"""Deterministic jittered exponential backoff, shared by every retrier.

Two layers retry failed work and both must do it *deterministically*:
the sweep executor's per-cell retry (:mod:`repro.experiments.sweep`)
and the service's worker-crash respawn/replay loop
(:mod:`repro.service.shards`).  A :class:`BackoffPolicy` gives them one
vocabulary: exponential growth from ``base`` by ``multiplier`` per
attempt, capped at ``cap``, with a *seeded* jitter so repeated runs of
the same failure sequence wait the same amounts — reproducibility is
this repository's core discipline, and "retry timing" is not exempt.

The jitter derives from SHA-256 over ``(seed, token, attempt)`` rather
than a shared :mod:`random` stream, so concurrent retriers (several
shards, several sweep cells) cannot perturb each other's delays, and a
delay can be recomputed after the fact from the diagnostic log alone.
Full jitter over ``[1 - jitter, 1]`` of the capped delay keeps herds of
clients from synchronising their retries (the same thundering-herd
argument the paper makes for randomised bus re-arbitration).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BackoffPolicy"]


def _fraction(seed: int, token: str, attempt: int) -> float:
    """A reproducible uniform draw in ``[0, 1)`` for one retry decision."""
    digest = hashlib.sha256(
        f"{seed}:{token}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic full jitter.

    Parameters
    ----------
    base:
        Delay before the first retry (seconds), pre-jitter.
    cap:
        Upper bound on any delay (seconds); growth saturates here.
    multiplier:
        Geometric growth factor per attempt (``>= 1``).
    jitter:
        Fraction of the capped delay the jitter may remove: attempt
        ``a`` with token ``t`` waits ``capped * (1 - jitter * u)`` for
        the deterministic draw ``u = u(seed, t, a)``.  ``0`` disables
        jitter entirely.
    seed:
        Root of every jitter draw; two policies with equal fields
        produce byte-equal delay sequences.
    """

    base: float = 0.05
    cap: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0.0:
            raise ConfigurationError(f"backoff base must be >= 0, got {self.base}")
        if self.cap < self.base:
            raise ConfigurationError(
                f"backoff cap must be >= base ({self.base}), got {self.cap}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"backoff jitter must be within [0, 1], got {self.jitter}"
            )

    @classmethod
    def none(cls) -> "BackoffPolicy":
        """A zero-delay policy (tests, and callers that must not sleep)."""
        return cls(base=0.0, cap=0.0, jitter=0.0)

    def delay(self, attempt: int, token: str = "") -> float:
        """The deterministic delay before retry number ``attempt`` (0-based).

        ``token`` names the retrying context (a cell tag, a shard id) so
        distinct retriers draw independent jitter from one seed.
        """
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        raw = min(self.cap, self.base * self.multiplier**attempt)
        if raw <= 0.0 or self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter * _fraction(self.seed, token, attempt))

    def sleep(self, attempt: int, token: str = "") -> float:
        """Sleep the attempt's delay; returns the seconds actually slept."""
        delay = self.delay(attempt, token)
        if delay > 0.0:
            time.sleep(delay)
        return delay

"""Asyncio front end: the service over a local stream socket.

The wire protocol is deliberately minimal — newline-delimited JSON
request/response over an ``AF_UNIX`` stream socket, one JSON object per
line, ``utf-8``.  Every request is ``{"op": <name>, ...}`` and every
response carries ``"ok"``:

=========  ==================================================  =========================
op         request fields                                      response (``ok: true``)
=========  ==================================================  =========================
submit     ``requests`` (list of RunRequest docs),             ``job`` (wire summary)
           optional ``deadline``, ``max_cells``, ``tag``
status     ``job_id``                                          ``job``
wait       ``job_id``, optional ``timeout`` (seconds)          ``job`` (terminal unless
                                                               the wait timed out)
stats      —                                                   ``stats`` (counters,
                                                               backlog, pool health)
ping       —                                                   ``pong: true``
shutdown   optional ``drain`` (default true)                   ``stopping: true``
=========  ==================================================  =========================

Failures answer ``{"ok": false, "error": ...}``; a backpressure
rejection additionally carries ``retry_after`` so clients can implement
the spread-out retry the admission controller's hint is designed for.
Responses are canonical JSON (sorted keys, compact separators), so the
protocol is byte-reproducible for identical state — the same property
the telemetry JSONL and the request codec already hold.

The event loop never blocks on simulation work: ``submit`` returns as
soon as the job is admitted, and ``wait`` parks on the job's completion
event in a worker thread (``asyncio.to_thread``), so one slow job never
stalls another client's status poll.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError, ReproError
from repro.service.service import ArbitrationService
from repro.session.request import RunRequest

__all__ = ["ServiceServer", "default_socket_path", "serve"]

#: Longest request line accepted (a grid of a few hundred cells fits
#: comfortably; anything larger should use the programmatic path).
MAX_LINE = 8 * 1024 * 1024

#: Cap on one ``wait`` op, so an abandoned connection cannot pin a
#: worker thread forever; clients re-issue ``wait`` to keep blocking.
MAX_WAIT = 60.0


def default_socket_path() -> Path:
    """The conventional socket location (``$REPRO_SERVICE_SOCKET`` wins)."""
    import os
    import tempfile

    override = os.environ.get("REPRO_SERVICE_SOCKET")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-service.sock"


def _encode(doc: dict) -> bytes:
    return (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


class ServiceServer:
    """One service behind one unix-domain stream socket.

    Parameters
    ----------
    service:
        The :class:`~repro.service.service.ArbitrationService` to front.
        The server never owns it exclusively — programmatic submitters
        may share it — but :meth:`run` closes it on the way out.
    socket_path:
        Where to listen; a stale socket file is replaced.
    """

    def __init__(
        self,
        service: ArbitrationService,
        socket_path: Union[str, Path, None] = None,
    ) -> None:
        self.service = service
        self.socket_path = Path(socket_path) if socket_path is not None else default_socket_path()
        self._server: Optional[asyncio.AbstractServer] = None
        #: Created lazily in :meth:`start`, under the running loop: an
        #: ``asyncio.Event`` built in ``__init__`` would bind
        #: ``get_event_loop()``'s loop on Python 3.9 and make
        #: ``await wait()`` fail under ``asyncio.run``'s fresh loop.
        self._shutdown: Optional[asyncio.Event] = None
        #: Shutdown semantics requested by the last ``shutdown`` op.
        self._drain = True

    def _shutdown_event(self) -> asyncio.Event:
        if self._shutdown is None:
            self._shutdown = asyncio.Event()
        return self._shutdown

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start accepting connections."""
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._shutdown_event()  # bind to the running loop before serving
        self.service.start()
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path), limit=MAX_LINE
        )

    async def wait_closed(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`stop`) arrives."""
        await self._shutdown_event().wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, drain (per the shutdown op), close the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.to_thread(self.service.close, self._drain)
        if self.socket_path.exists():
            self.socket_path.unlink()

    def run(self) -> None:
        """Serve until shutdown — the blocking entry point the CLI uses."""

        async def _main() -> None:
            await self.start()
            await self.wait_closed()

        asyncio.run(_main())

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # over-long line or peer reset: drop the connection
                if not line:
                    break
                response = await self._respond(line)
                writer.write(_encode(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
                if self._shutdown is not None and self._shutdown.is_set():
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _respond(self, line: bytes) -> dict:
        """One request line to one response document; never raises."""
        try:
            doc = json.loads(line.decode("utf-8"))
            if not isinstance(doc, dict):
                raise ConfigurationError("request must be a JSON object")
            op = doc.get("op")
            if op == "submit":
                return self._op_submit(doc)
            if op == "status":
                return self._op_status(doc)
            if op == "wait":
                return await self._op_wait(doc)
            if op == "stats":
                return {"ok": True, "stats": self.service.stats_snapshot()}
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "shutdown":
                self._drain = bool(doc.get("drain", True))
                self._shutdown_event().set()
                return {"ok": True, "stopping": True}
            raise ConfigurationError(f"unknown op {op!r}")
        except (ReproError, json.JSONDecodeError, KeyError, TypeError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- ops -------------------------------------------------------------------

    def _op_submit(self, doc: dict) -> dict:
        raw = doc.get("requests")
        if not isinstance(raw, list):
            raise ConfigurationError("submit needs a 'requests' list")
        requests = [RunRequest.from_dict(item) for item in raw]
        job = self.service.submit(
            requests,
            deadline=doc.get("deadline"),
            max_cells=doc.get("max_cells"),
            tag=doc.get("tag"),
        )
        answer = {"ok": True, "job": job.describe()}
        if job.retry_after is not None:
            answer["retry_after"] = job.retry_after
        return answer

    def _op_status(self, doc: dict) -> dict:
        job = self.service.job(str(doc["job_id"]))
        return {"ok": True, "job": job.describe()}

    async def _op_wait(self, doc: dict) -> dict:
        job = self.service.job(str(doc["job_id"]))
        timeout = doc.get("timeout")
        timeout = MAX_WAIT if timeout is None else min(float(timeout), MAX_WAIT)
        finished = await asyncio.to_thread(job.wait, timeout)
        answer = {"ok": True, "job": job.describe(), "finished": finished}
        return answer


def serve(
    service: Optional[ArbitrationService] = None,
    socket_path: Union[str, Path, None] = None,
) -> None:
    """Convenience wrapper: build a server around ``service`` and block.

    A missing ``service`` gets a default one (no cache).  This is what
    ``repro serve`` calls after assembling the configured service.
    """
    if service is None:
        service = ArbitrationService()
    ServiceServer(service, socket_path).run()

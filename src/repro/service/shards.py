"""Sharded process-pool back end with respawn and graceful degradation.

The service's compute layer is a small fleet of independent
:class:`~concurrent.futures.ProcessPoolExecutor` shards.  Work routes
to a shard by the cell's epoch-6 content hash, so one crashing payload
can only take down the futures of its own shard — the blast radius the
paper's distributed arbiters get from per-agent state replication, here
applied to the serving layer.

Failure ladder (each rung strictly contains the one above):

1. a worker crash breaks one shard; the shard is **respawned** after a
   deterministic jittered backoff delay and the in-flight payloads are
   replayed (the service bounds replays per job);
2. repeated crashes exhaust ``max_respawns`` — or the platform cannot
   host process pools at all — and the whole pool **degrades** to
   serial in-process execution: slower, but every accepted job still
   reaches a terminal state;
3. payloads executed serially strip the test-only crash arming, so a
   replay can never re-trigger the fault that killed its worker.

The ``arm_kills`` hook is the deterministic fault-injection seam the
soak suite uses: the next *n* payloads submitted to worker processes
``os._exit`` before touching their cell, which is indistinguishable
from a real mid-job worker loss (OOM kill, segfault) at the
``BrokenProcessPool`` boundary the service recovers across.
"""

from __future__ import annotations

import copy
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.service.backoff import BackoffPolicy

__all__ = ["ShardPool", "split_by_shard", "PAYLOAD_CELL", "PAYLOAD_LANES"]

#: Payload kinds: one simulation cell, or one lane-packed super-batch.
PAYLOAD_CELL = "cell"
PAYLOAD_LANES = "lanes"


def _execute_payload(kind: str, kill: bool, data):
    """Worker entry point: module-level so it pickles by reference.

    ``kill`` is the soak suite's crash seam — the worker exits hard
    *before* touching the cell, modelling an OOM-killed or segfaulted
    worker whose shard must be respawned and whose work replayed.
    """
    if kill:
        os._exit(13)
    if kind == PAYLOAD_LANES:
        from repro.engine.batch import run_lanes

        return list(run_lanes(data))
    scenario, protocol, settings = data
    from repro.session.single import run_cell

    return run_cell(scenario, protocol, settings)


class ShardPool:
    """A fixed set of process-pool shards with crash recovery.

    Parameters
    ----------
    shards:
        Number of independent pools; cells route by content hash.
    workers:
        Worker processes per shard.
    backoff:
        Respawn pacing (shared :class:`BackoffPolicy` vocabulary);
        attempt numbers count *cumulative* respawns so repeated crashes
        wait progressively longer.
    max_respawns:
        Cumulative respawns across shards before the pool declares
        itself irrecoverable and degrades to serial execution.
    """

    def __init__(
        self,
        shards: int = 2,
        workers: int = 1,
        backoff: Optional[BackoffPolicy] = None,
        max_respawns: int = 4,
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.shards = shards
        self.workers = workers
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.max_respawns = max_respawns
        self._pools: List[Optional[ProcessPoolExecutor]] = [None] * shards
        #: Per-shard pool identity, bumped on every respawn: payloads
        #: remember the generation they were submitted under, so one
        #: crash (which breaks every queued future of its shard at
        #: once) triggers exactly one respawn — stale-generation
        #: failures replay on the replacement pool instead of
        #: respawning again.
        self._generations: List[int] = [0] * shards
        self._lock = threading.Lock()
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self.crashes = 0
        self.respawns = 0
        self._kill_budget = 0
        self._closed = False

    # -- routing --------------------------------------------------------------

    def shard_for(self, key: str) -> int:
        """The shard a content key routes to (stable across calls)."""
        try:
            prefix = int(key[:8], 16)
        except ValueError:
            prefix = hash(key)
        return prefix % self.shards

    def generation(self, shard: int) -> int:
        """The shard's current pool generation (see ``_generations``)."""
        with self._lock:
            return self._generations[shard]

    # -- fault injection (tests) ----------------------------------------------

    def arm_kills(self, count: int = 1) -> None:
        """Make the next ``count`` worker payloads crash their process."""
        with self._lock:
            self._kill_budget += count

    def _take_kill(self) -> bool:
        with self._lock:
            if self._kill_budget > 0:
                self._kill_budget -= 1
                return True
            return False

    # -- pool management ------------------------------------------------------

    def _pool(self, shard: int) -> ProcessPoolExecutor:
        """The shard's executor, building it on first use.

        Raises whatever the platform raises when process pools are
        unavailable; the caller degrades.
        """
        pool = self._pools[shard]
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=self.workers)
            self._pools[shard] = pool
        return pool

    def submit(self, shard: int, kind: str, data) -> Future:
        """Submit one payload to ``shard``; consumes any armed kill.

        Raises :class:`BrokenExecutor` (or the platform's pool-creation
        error) straight through — recovery policy lives in the service.
        """
        kill = self._take_kill()
        return self._pool(shard).submit(_execute_payload, kind, kill, data)

    def note_crash(self) -> None:
        """Record one observed worker crash (``BrokenProcessPool``)."""
        with self._lock:
            self.crashes += 1

    def respawn(self, shard: int, token: str = "") -> bool:
        """Replace a broken shard after the backoff delay.

        Returns False — without raising — once the respawn budget is
        exhausted or the platform refuses a new pool; the caller then
        degrades.  The attempt number fed to the backoff is the
        cumulative respawn count, so a crash storm waits progressively
        longer instead of spinning.
        """
        with self._lock:
            if self.respawns >= self.max_respawns:
                return False
            attempt = self.respawns
            self.respawns += 1
            self._generations[shard] += 1
        broken = self._pools[shard]
        self._pools[shard] = None
        if broken is not None:
            broken.shutdown(wait=False, cancel_futures=True)
        self.backoff.sleep(attempt, token=token or f"shard{shard}")
        try:
            self._pool(shard)
        except Exception:
            return False
        return True

    def degrade(self, reason: str) -> None:
        """Declare the pool irrecoverable; execution turns serial."""
        self.degraded = True
        self.degraded_reason = reason
        for shard, pool in enumerate(self._pools):
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                self._pools[shard] = None

    # -- serial fallback ------------------------------------------------------

    @staticmethod
    def run_serial(kind: str, data):
        """Execute one payload in-process (degraded mode / final replay).

        The crash arming is deliberately not consulted: a replayed or
        degraded payload must run clean, and an armed kill must never
        take down the service process itself.
        """
        if kind == PAYLOAD_LANES:
            from repro.engine.batch import run_lanes

            return list(run_lanes(data))
        scenario, protocol, settings = data
        from repro.session.single import run_cell

        return run_cell(copy.deepcopy(scenario), protocol, settings)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard, pool in enumerate(self._pools):
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
                self._pools[shard] = None

    def describe(self) -> dict:
        """JSON-safe pool state for the service's ``stats`` answer."""
        return {
            "shards": self.shards,
            "workers": self.workers,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "crashes": self.crashes,
            "respawns": self.respawns,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "degraded" if self.degraded else "pooled"
        return f"ShardPool({self.shards}x{self.workers}, {mode})"


def split_by_shard(
    keys: Sequence[str], pool: ShardPool
) -> List[Tuple[int, List[int]]]:
    """Group positions by their key's routed shard, shard order stable.

    A helper for lane packing: the service batches same-gather misses
    into one lanes payload *per shard*, so the content-addressed
    routing and the lockstep engine compose instead of competing.
    """
    by_shard: dict = {}
    for index, key in enumerate(keys):
        by_shard.setdefault(pool.shard_for(key), []).append(index)
    return sorted(by_shard.items())

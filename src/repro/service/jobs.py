"""The service's unit of work: a job, its budget, its terminal states.

A :class:`Job` wraps one or more
:class:`~repro.session.request.RunRequest`\\ s submitted together, and
the service guarantees every *accepted* job reaches exactly one
terminal state:

- ``done`` — every cell produced a result;
  :attr:`Job.outcomes` carries per-cell
  :class:`~repro.session.outcome.RunOutcome` provenance;
- ``failed`` — at least one cell raised even after its bounded retry;
  :attr:`Job.failure` carries the
  :class:`~repro.session.outcome.CellFailure` diagnostic;
- ``rejected`` — refused at admission (queue full → backpressure with
  :attr:`Job.retry_after`; or the cell budget was exceeded);
- ``timeout`` — the job's wall-clock deadline expired before its
  results were ready (queued or mid-run; partial results are
  discarded, the shared cache still keeps whatever completed).

:class:`ServiceEvent` is the service's JSONL telemetry record — shaped
for the same :class:`~repro.observability.sinks.EventSink` protocol the
simulation's arbitration events stream through, so one sink
implementation serves both layers.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ServiceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.session.outcome import CellFailure, RunOutcome
    from repro.session.request import RunRequest
    from repro.stats.summary import RunResult

__all__ = [
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_REJECTED",
    "JOB_TIMEOUT",
    "TERMINAL_STATES",
    "JobBudget",
    "Job",
    "ServiceEvent",
]

#: Job lifecycle states.  ``queued`` and ``running`` are transient;
#: everything in :data:`TERMINAL_STATES` is final and set exactly once.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_REJECTED = "rejected"
JOB_TIMEOUT = "timeout"

TERMINAL_STATES = frozenset({JOB_DONE, JOB_FAILED, JOB_REJECTED, JOB_TIMEOUT})


@dataclass(frozen=True)
class JobBudget:
    """Per-job resource bounds, both optional.

    Attributes
    ----------
    deadline:
        Wall-clock seconds from admission; past it the job is cancelled
        and finishes ``timeout``.  ``0`` is legal and expires the job at
        dispatch (useful for probing queue latency).
    max_cells:
        Most simulation cells the job may carry; a larger job is
        ``rejected`` at admission, before any work is queued.
    """

    deadline: Optional[float] = None
    max_cells: Optional[int] = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline < 0.0:
            raise ConfigurationError(
                f"job deadline must be >= 0 seconds, got {self.deadline}"
            )
        if self.max_cells is not None and self.max_cells < 1:
            raise ConfigurationError(
                f"job max_cells must be >= 1, got {self.max_cells}"
            )


class Job:
    """One submitted batch of requests and its lifecycle.

    State transitions are made by the service only; clients observe via
    :meth:`wait` / :attr:`state` / :meth:`results`.  The completion
    event makes ``wait`` safe from any thread (and from the asyncio
    front end via a thread executor).
    """

    def __init__(
        self,
        job_id: str,
        requests: Sequence["RunRequest"],
        budget: JobBudget = JobBudget(),
        tag: Optional[str] = None,
        clock=time.monotonic,
    ) -> None:
        self.job_id = job_id
        self.requests: Tuple["RunRequest", ...] = tuple(requests)
        self.budget = budget
        self.tag = tag
        self._clock = clock
        self.submitted_at = clock()
        self.deadline_at: Optional[float] = (
            self.submitted_at + budget.deadline if budget.deadline is not None else None
        )
        self.state = JOB_QUEUED
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Replay count: how many times this job's cells were re-submitted
        #: after a worker crash (bounded by the service's retry policy).
        self.attempts = 0
        self.outcomes: Optional[List["RunOutcome"]] = None
        self.error: Optional[str] = None
        self.failure: Optional["CellFailure"] = None
        #: Backpressure hint on rejection: seconds to wait before retrying.
        self.retry_after: Optional[float] = None
        self._finished = threading.Event()

    # -- observation ----------------------------------------------------------

    @property
    def cells(self) -> int:
        return len(self.requests)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def expired(self, now: Optional[float] = None) -> bool:
        """True once the wall-clock deadline has passed."""
        if self.deadline_at is None:
            return False
        return (now if now is not None else self._clock()) >= self.deadline_at

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds left before the deadline (``None`` = unbounded)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - (now if now is not None else self._clock())

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; True if it finished in time."""
        return self._finished.wait(timeout)

    def results(self) -> List["RunResult"]:
        """The per-request results of a ``done`` job, in request order.

        Raises :class:`~repro.errors.ServiceError` for any other state,
        naming the state and diagnostic so callers need no state machine
        of their own.
        """
        if self.state == JOB_DONE:
            assert self.outcomes is not None
            return [outcome.result for outcome in self.outcomes]
        detail = f": {self.error}" if self.error else ""
        raise ServiceError(
            f"job {self.job_id} has no results (state {self.state!r}{detail})"
        )

    def describe(self) -> dict:
        """A JSON-safe summary (the wire answer to ``status``/``wait``).

        Results travel as summary statistics, not pickles: the service
        protocol is diagnostic/consumer-facing, while byte-exact result
        objects stay on the programmatic path (shared cache + session).
        """
        doc = {
            "job_id": self.job_id,
            "state": self.state,
            "cells": self.cells,
            "tag": self.tag,
            "attempts": self.attempts,
            "error": self.error,
            "retry_after": self.retry_after,
            "elapsed": (
                round(self.finished_at - self.submitted_at, 6)
                if self.finished_at is not None
                else None
            ),
        }
        if self.state == JOB_DONE and self.outcomes is not None:
            doc["results"] = [_summarise(outcome) for outcome in self.outcomes]
        if self.failure is not None:
            doc["failure"] = str(self.failure)
        return doc

    # -- transitions (service-internal) ---------------------------------------

    def _start(self) -> None:
        if self.started_at is None:
            self.started_at = self._clock()
        self.state = JOB_RUNNING

    def _finish(
        self,
        state: str,
        outcomes: Optional[List["RunOutcome"]] = None,
        error: Optional[str] = None,
        failure: Optional["CellFailure"] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        if self.terminal:  # terminal states are written exactly once
            return
        assert state in TERMINAL_STATES, state
        self.state = state
        self.outcomes = outcomes
        self.error = error
        self.failure = failure
        self.retry_after = retry_after
        self.finished_at = self._clock()
        self._finished.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.job_id!r}, state={self.state!r}, cells={self.cells})"


def _summarise(outcome: "RunOutcome") -> dict:
    """One cell's wire summary: headline metrics plus provenance."""
    result = outcome.result
    doc: dict = {
        "protocol": outcome.request.protocol,
        "scenario": outcome.request.scenario.name,
        "route": outcome.route,
        "cached": outcome.cached,
    }
    if result is None:  # pragma: no cover - done jobs always carry results
        return doc
    doc["utilization"] = result.utilization
    doc["failed"] = result.failed
    try:
        doc["throughput"] = result.system_throughput().mean
        doc["mean_waiting"] = result.mean_waiting().mean
    except Exception:
        # A failed (watchdog-gave-up) run may lack enough batches for
        # interval estimates; the summary stays partial rather than
        # failing the status call.
        pass
    return doc


@dataclass(frozen=True)
class ServiceEvent:
    """One service-lifecycle telemetry record (JSONL via an EventSink).

    Attributes
    ----------
    seq:
        Monotone per-service sequence number (stream order).
    kind:
        What happened: ``admit``, ``reject``, ``dispatch``, ``retry``,
        ``degrade``, ``deadline`` or ``terminal``.
    job_id:
        The job concerned (empty for service-wide events).
    state:
        The job's state after the event.
    detail:
        Free-form diagnostic (rejection reason, crash description).
    """

    seq: int
    kind: str
    job_id: str
    state: str
    detail: str = ""

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        return json.dumps(
            {
                "seq": self.seq,
                "kind": self.kind,
                "job_id": self.job_id,
                "state": self.state,
                "detail": self.detail,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

"""Arbitration-as-a-service: the fault-tolerant async job layer.

The package splits along the failure ladder it implements:

- :mod:`repro.service.backoff` — deterministic jittered exponential
  backoff, the one retry-pacing vocabulary every layer shares;
- :mod:`repro.service.jobs` — jobs, budgets, terminal states, and the
  service's JSONL telemetry record;
- :mod:`repro.service.admission` — the bounded queue with explicit
  backpressure;
- :mod:`repro.service.shards` — the sharded process-pool back end with
  respawn and graceful degradation;
- :mod:`repro.service.service` — :class:`ArbitrationService`, the
  orchestrator tying those together over the session planner;
- :mod:`repro.service.server` / :mod:`repro.service.client` — the
  asyncio socket front end and its synchronous client.

The light vocabulary (backoff, jobs, admission, shards) imports
eagerly; the heavier orchestration and I/O layers resolve lazily on
first attribute access, so ``repro.experiments.sweep``'s import of the
shared backoff policy does not drag asyncio and process pools into
every sweep.
"""

from repro.service.admission import AdmissionController
from repro.service.backoff import BackoffPolicy
from repro.service.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_REJECTED,
    JOB_RUNNING,
    JOB_TIMEOUT,
    TERMINAL_STATES,
    Job,
    JobBudget,
    ServiceEvent,
)
from repro.service.shards import ShardPool

__all__ = [
    "AdmissionController",
    "ArbitrationService",
    "BackoffPolicy",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_REJECTED",
    "JOB_RUNNING",
    "JOB_TIMEOUT",
    "Job",
    "JobBudget",
    "ServiceClient",
    "ServiceConfig",
    "ServiceEvent",
    "ServiceServer",
    "ShardPool",
    "TERMINAL_STATES",
    "default_socket_path",
    "serve",
]

_LAZY = {
    "ArbitrationService": "repro.service.service",
    "ServiceConfig": "repro.service.service",
    "ServiceServer": "repro.service.server",
    "default_socket_path": "repro.service.server",
    "serve": "repro.service.server",
    "ServiceClient": "repro.service.client",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)

"""Admission control: a bounded queue with explicit backpressure.

The service never buffers without bound — the queue's capacity is the
*whole* of its memory commitment to un-started work, exactly like the
paper's arbiters bound the state an agent may accumulate.  A submission
against a full queue is refused immediately with a ``retry_after``
hint rather than parked, so overload surfaces at the edge (where a
client can shed, defer or spread load) instead of as latency collapse
in the middle.

The ``retry_after`` hint scales with the backlog: a queue at capacity
suggests waiting roughly the time the current backlog needs to drain
(``retry_after`` base × backlog), which spreads a thundering herd of
retries the same way the jittered backoff of
:mod:`repro.service.backoff` does on the worker side.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional

from repro.errors import ConfigurationError
from repro.service.jobs import Job

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded FIFO of admitted jobs, safe across client threads.

    Parameters
    ----------
    limit:
        Most jobs the queue holds; offers beyond it are refused.
    retry_after:
        Base backpressure hint in seconds; scaled by the backlog when a
        submission is refused.
    """

    def __init__(self, limit: int = 64, retry_after: float = 0.05) -> None:
        if limit < 1:
            raise ConfigurationError(f"admission limit must be >= 1, got {limit}")
        if retry_after <= 0.0:
            raise ConfigurationError(
                f"retry_after must be > 0 seconds, got {retry_after}"
            )
        self.limit = limit
        self.retry_after = retry_after
        self._queue: Deque[Job] = deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False
        #: Peak backlog ever observed (observability; no control role).
        self.high_water = 0

    def offer(self, job: Job) -> Optional[float]:
        """Admit ``job`` or refuse it.

        Returns ``None`` on admission; on refusal (queue full, or the
        controller closed) returns the ``retry_after`` hint in seconds.
        """
        with self._available:
            if self._closed or len(self._queue) >= self.limit:
                return self.retry_after * max(1, len(self._queue))
            self._queue.append(job)
            self.high_water = max(self.high_water, len(self._queue))
            self._available.notify()
            return None

    def take(self, limit: int, timeout: Optional[float] = None) -> List[Job]:
        """Dequeue up to ``limit`` jobs, blocking for the first.

        Returns an empty list on timeout or once the controller is
        closed and drained — the dispatcher's signal to exit.
        """
        with self._available:
            if not self._queue and not self._closed:
                self._available.wait(timeout)
            taken: List[Job] = []
            while self._queue and len(taken) < limit:
                taken.append(self._queue.popleft())
            return taken

    def close(self) -> None:
        """Refuse all future offers; queued jobs remain takeable."""
        with self._available:
            self._closed = True
            self._available.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(backlog={len(self)}/{self.limit}, "
            f"closed={self._closed})"
        )

"""Synchronous client for the service's socket protocol.

:class:`ServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.service.server` over an ``AF_UNIX`` stream socket.  It is
deliberately thin: requests are encoded with the same
:meth:`~repro.session.request.RunRequest.to_dict` codec the session
layer defines, responses come back as plain dicts (the ``job`` wire
summaries), and the one piece of policy it adds is
:meth:`submit_retry` — the client-side half of the backpressure
contract, which honours the server's ``retry_after`` hints instead of
hammering a full queue.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.errors import ServiceError
from repro.service.server import default_socket_path
from repro.session.request import RunRequest

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a running service.

    Parameters
    ----------
    socket_path:
        The server's socket (defaults to the conventional location,
        ``$REPRO_SERVICE_SOCKET`` honoured).
    timeout:
        Socket timeout per protocol exchange, seconds.  ``wait`` ops
        extend it by the wait's own bound.

    Usable as a context manager; the connection is opened lazily on the
    first call, so constructing a client is free.
    """

    def __init__(
        self,
        socket_path: Union[str, Path, None] = None,
        timeout: float = 30.0,
    ) -> None:
        self.socket_path = Path(socket_path) if socket_path is not None else default_socket_path()
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection -----------------------------------------------------------

    def _connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(str(self.socket_path))
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot reach service at {self.socket_path}: {exc}"
            ) from None
        self._sock = sock
        self._file = sock.makefile("rwb")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- protocol -------------------------------------------------------------

    def call(self, doc: dict, timeout: Optional[float] = None) -> dict:
        """One request/response exchange; raises ServiceError on failure.

        Error answers (``ok: false``) raise with the server's
        diagnostic; transport failures raise with the socket's.  A
        rejection with a ``retry_after`` hint does *not* raise — it is a
        well-formed answer the caller must interpret (see
        :meth:`submit`).
        """
        self._connect()
        assert self._sock is not None and self._file is not None
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
            self._file.write(payload.encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            self.close()
            raise ServiceError(f"service connection failed: {exc}") from None
        finally:
            if timeout is not None and self._sock is not None:
                self._sock.settimeout(self.timeout)
        if not line:
            self.close()
            raise ServiceError("service closed the connection")
        answer = json.loads(line.decode("utf-8"))
        if not answer.get("ok"):
            raise ServiceError(answer.get("error", "service error"))
        return answer

    # -- ops ------------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        return self.call({"op": "stats"})["stats"]

    def submit(
        self,
        requests: Union[RunRequest, Sequence[RunRequest]],
        deadline: Optional[float] = None,
        max_cells: Optional[int] = None,
        tag: Optional[str] = None,
    ) -> dict:
        """Submit a job; returns its wire summary (possibly terminal).

        A backpressure rejection comes back as a summary with
        ``state == "rejected"`` and a ``retry_after`` hint — it does not
        raise, because rejection is the protocol working as designed.
        """
        if isinstance(requests, RunRequest):
            requests = [requests]
        doc = {
            "op": "submit",
            "requests": [request.to_dict() for request in requests],
        }
        if deadline is not None:
            doc["deadline"] = deadline
        if max_cells is not None:
            doc["max_cells"] = max_cells
        if tag is not None:
            doc["tag"] = tag
        return self.call(doc)["job"]

    def submit_retry(
        self,
        requests: Union[RunRequest, Sequence[RunRequest]],
        attempts: int = 5,
        deadline: Optional[float] = None,
        max_cells: Optional[int] = None,
        tag: Optional[str] = None,
        sleep=time.sleep,
    ) -> dict:
        """Submit, honouring backpressure: sleep ``retry_after``, retry.

        Gives up (returning the last rejection summary) after
        ``attempts`` tries; any non-backpressure rejection — a budget
        violation will never succeed on retry — returns immediately.
        """
        summary: dict = {}
        for _ in range(max(1, attempts)):
            summary = self.submit(
                requests, deadline=deadline, max_cells=max_cells, tag=tag
            )
            retry_after = summary.get("retry_after")
            if summary.get("state") != "rejected" or retry_after is None:
                return summary
            sleep(retry_after)
        return summary

    def status(self, job_id: str) -> dict:
        return self.call({"op": "status", "job_id": job_id})["job"]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Block until ``job_id`` is terminal; returns its wire summary.

        ``timeout=None`` blocks indefinitely by re-issuing bounded
        ``wait`` ops (the server caps each at its ``MAX_WAIT``), so an
        abandoned connection can never pin a server thread.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            answer = self.call(
                {"op": "wait", "job_id": job_id, "timeout": remaining},
                timeout=self.timeout + (remaining if remaining is not None else 60.0),
            )
            job = answer["job"]
            if job["state"] not in ("queued", "running"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                return job

    def shutdown(self, drain: bool = True) -> None:
        """Ask the server to stop (draining queued jobs by default)."""
        self.call({"op": "shutdown", "drain": drain})
        self.close()

"""A single wired-OR (open-collector) bus line.

Each agent either *asserts* the line (drives a logical "1") or *releases*
it (lets it float).  The line's observed value is "1" exactly when at
least one agent asserts it — the electrical wired-OR the paper's §2
describes.  Drivers are tracked individually so tests can ask "who is
holding this line high?".
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.errors import SignalError

__all__ = ["WiredOrLine"]


class WiredOrLine:
    """One open-collector line with named drivers.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"bus-request"`` or ``"arb[3]"``).
    """

    __slots__ = ("name", "_asserting")

    def __init__(self, name: str = "line") -> None:
        self.name = name
        self._asserting: Set[int] = set()

    @property
    def value(self) -> bool:
        """Observed line level: ``True`` iff any driver asserts it."""
        return bool(self._asserting)

    @property
    def asserting(self) -> FrozenSet[int]:
        """The set of driver ids currently asserting the line."""
        return frozenset(self._asserting)

    def assert_(self, driver: int) -> None:
        """Driver ``driver`` pulls the line to "1" (idempotent)."""
        self._asserting.add(driver)

    def release(self, driver: int) -> None:
        """Driver ``driver`` stops driving the line.

        Raises
        ------
        SignalError
            If the driver was not asserting the line; releasing a line one
            does not hold indicates a protocol bug, so it is loud.
        """
        try:
            self._asserting.remove(driver)
        except KeyError:
            raise SignalError(
                f"driver {driver} released {self.name!r} without asserting it"
            ) from None

    def release_if_held(self, driver: int) -> None:
        """Like :meth:`release` but a no-op when the driver is not on."""
        self._asserting.discard(driver)

    def clear(self) -> None:
        """Forcibly remove every driver (used between arbitrations)."""
        self._asserting.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        level = 1 if self._asserting else 0
        return f"WiredOrLine({self.name!r}={level}, drivers={sorted(self._asserting)})"

"""The parallel contention maximum-finding settle process.

This is the distributed algorithm at the heart of every protocol in the
paper (§2.1).  Each competing agent applies its arbitration number to the
wired-OR lines and then monitors the lines in parallel, obeying one local
rule:

    if line *i* carries "1" but my bit *i* is "0", withdraw my bits below
    *i*; if line *i* later drops back to "0", reapply them.

Iterated, the rule drives the lines to the maximum competing number, and
every agent can tell whether it won by comparing its own number with the
settled word.

The model here is *synchronous-round*: in each round every agent observes
the current wired-OR word and recomputes its applied pattern, and then all
lines update together.  One round corresponds to one end-to-end bus
propagation delay.  Taub proved the analog process settles within ``k/2``
end-to-end propagations for the worst-case physical placement of agents
along the bus [Taub84]; the synchronous abstraction settles within ``k``
rounds (each round removes or restores at least one contested bit level),
which the test suite verifies by property test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ArbitrationError, SignalError
from repro.signals.lines import ArbitrationLineBundle

__all__ = ["ParallelContention", "ContentionResult", "applied_pattern"]


def applied_pattern(identity: int, observed: int, width: int) -> int:
    """The pattern an agent applies given the observed wired-OR word.

    Implements the paper's local rule.  Let ``p`` be the highest bit
    position where ``observed`` carries "1" but ``identity`` carries "0";
    the agent withdraws all bits strictly below ``p`` (its bit at ``p`` is
    already 0).  If no such position exists the full identity is applied.
    """
    if identity < 0:
        raise SignalError(f"identity must be non-negative, got {identity}")
    dominated = observed & ~identity
    if not dominated:
        return identity
    p = dominated.bit_length() - 1
    if p >= width:
        raise SignalError(
            f"observed word {observed:#x} wider than the {width}-line bundle"
        )
    return identity & ~((1 << p) - 1)


@dataclass(frozen=True)
class ContentionResult:
    """Outcome of one settled contention.

    Attributes
    ----------
    winner_identity:
        The settled wired-OR word — the maximum competing arbitration
        number, or 0 when nobody competed.
    rounds:
        Synchronous propagation rounds needed to reach the fixpoint
        (0 when nobody competed).
    history:
        The observed word after each round, for diagnostics.
    """

    winner_identity: int
    rounds: int
    history: Tuple[int, ...]

    @property
    def empty(self) -> bool:
        """True when no agent competed (reserved all-zero result)."""
        return self.winner_identity == 0


class ParallelContention:
    """Runs the settle process over an :class:`ArbitrationLineBundle`.

    Parameters
    ----------
    width:
        Number of arbitration lines.
    max_rounds:
        Safety bound on settle iterations.  Defaults to ``width + 1``; the
        process is proven to settle within ``width`` rounds, and exceeding
        the bound raises :class:`~repro.errors.ArbitrationError` because it
        would mean the local rule is mis-implemented.
    cache_size:
        Upper bound on the settle-result memo.  The settled word, round
        count and per-round history are a pure function of the *set* of
        competing identities (each round recomputes every agent's pattern
        from the same observed snapshot), so repeat contentions — the
        overwhelmingly common case in a long simulation, where the same
        few agent subsets collide over and over — are answered from the
        memo without re-running the rounds.  Set to 0 to disable, e.g. to
        compare against the uncached path in tests.
    """

    def __init__(
        self,
        width: int,
        max_rounds: Optional[int] = None,
        cache_size: int = 4096,
    ) -> None:
        self.bundle = ArbitrationLineBundle(width)
        self.max_rounds = width + 1 if max_rounds is None else max_rounds
        self._cache: Optional[Dict[Tuple[int, ...], ContentionResult]] = (
            {} if cache_size > 0 else None
        )
        self._cache_size = cache_size
        #: Number of :meth:`resolve` calls answered from the memo.
        self.cache_hits = 0

    @property
    def width(self) -> int:
        """Number of arbitration lines."""
        return self.bundle.width

    def resolve(self, identities: Iterable[int]) -> ContentionResult:
        """Settle a contention among ``identities`` and report the winner.

        The bundle is cleared first, competitors apply their full numbers,
        and synchronous rounds run until the observed word is stable and
        every agent's applied pattern is consistent with it.

        Raises
        ------
        SignalError
            If an identity does not fit on the lines or identity 0 (the
            reserved "nobody" code) is used.
        ArbitrationError
            If the process fails to settle within ``max_rounds`` or the
            settled word is not the true maximum (cannot happen unless the
            model is broken; kept as an executable invariant).
        """
        competitors: Dict[int, int] = {}
        seen = set()
        for index, identity in enumerate(identities):
            if identity == 0:
                raise SignalError("identity 0 is reserved for 'nobody competed'")
            if identity > self.bundle.capacity:
                raise SignalError(
                    f"identity {identity} exceeds line capacity {self.bundle.capacity}"
                )
            if identity in seen:
                raise ArbitrationError(
                    f"duplicate arbitration number {identity}; identities must be unique"
                )
            seen.add(identity)
            competitors[index] = identity

        if not competitors:
            self.bundle.clear()
            return ContentionResult(winner_identity=0, rounds=0, history=())

        cache = self._cache
        key: Optional[Tuple[int, ...]] = None
        if cache is not None:
            key = tuple(sorted(seen))
            cached = cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached

        result = self._settle(competitors)
        if cache is not None:
            if len(cache) >= self._cache_size:
                cache.clear()
            cache[key] = result
        return result

    def _settle(self, competitors: Dict[int, int]) -> ContentionResult:
        """Run the synchronous-round settle process to its fixpoint."""
        self.bundle.clear()
        for driver, identity in competitors.items():
            self.bundle.apply(driver, identity)

        history = []
        observed = self.bundle.observed()
        history.append(observed)
        for round_index in range(1, self.max_rounds + 1):
            changed = False
            for driver, identity in competitors.items():
                pattern = applied_pattern(identity, observed, self.width)
                if pattern != self.bundle.applied_by(driver):
                    self.bundle.apply(driver, pattern)
                    changed = True
            new_observed = self.bundle.observed()
            history.append(new_observed)
            if not changed and new_observed == observed:
                settled = new_observed
                self._check_settled(settled, competitors.values(), round_index)
                return ContentionResult(
                    winner_identity=settled,
                    rounds=round_index,
                    history=tuple(history),
                )
            observed = new_observed
        raise ArbitrationError(
            f"contention failed to settle within {self.max_rounds} rounds"
        )

    @staticmethod
    def _check_settled(settled: int, identities: Iterable[int], rounds: int) -> None:
        expected = max(identities)
        if settled != expected:
            raise ArbitrationError(
                f"settled word {settled} != max identity {expected} "
                f"after {rounds} rounds"
            )

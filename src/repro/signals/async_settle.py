"""Asynchronous, placement-aware settle model of the contention arbiter.

The synchronous-round model of :mod:`repro.signals.contention` abstracts
away *where* agents sit along the backplane.  Taub's analysis [Taub84]
does not: his k/2 end-to-end-propagation bound on settle time is proved
against the worst-case *physical assignment of identities along the
bus*.  This module simulates the analog process:

- agents sit at positions in [0, 1], where 1.0 is one end-to-end bus
  propagation delay;
- when agent *j* changes the pattern it applies, agent *i* observes the
  change ``|x_i − x_j|`` time units later;
- an agent reacts to its observed wired-OR word instantaneously (an
  optional ``logic_delay`` models the monitoring logic) by applying the
  paper's withdraw/reapply rule.

The simulation is event-driven over pattern-change observations and
runs to quiescence; :class:`AsyncSettleResult.settle_time` is the time
(in end-to-end propagation units) after which no line changes anywhere
on the bus.  The ablation bench sweeps placements and widths to show
where Taub's k/2 sits relative to typical behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ArbitrationError, SignalError
from repro.signals.contention import applied_pattern

__all__ = ["AsyncContention", "AsyncSettleResult"]

#: Safety valve: an arbitration that generates this many observation
#: events is oscillating, which the withdraw/reapply rule cannot do.
_MAX_EVENTS = 100_000


@dataclass(frozen=True)
class AsyncSettleResult:
    """Outcome of one asynchronous settle.

    Attributes
    ----------
    winner_identity:
        The stable wired-OR word: the maximum competing identity.
    settle_time:
        Time of the last pattern change anywhere, plus the propagation
        needed for every agent to see the final word — i.e. when the
        whole bus agrees — in end-to-end propagation units.
    last_change_time:
        Time of the last pattern change alone (the quantity Taub's k/2
        worst-case bound speaks to: when the lines stop moving).
    pattern_changes:
        Total withdraw/reapply actions across all agents (a measure of
        switching activity on the lines).
    """

    winner_identity: int
    settle_time: float
    last_change_time: float
    pattern_changes: int


class AsyncContention:
    """Placement-aware analog settle simulation.

    Parameters
    ----------
    width:
        Number of arbitration lines (identity width in bits).
    logic_delay:
        Reaction time of each agent's monitoring logic, in end-to-end
        propagation units (0 = ideal instantaneous logic).
    """

    def __init__(self, width: int, logic_delay: float = 0.0) -> None:
        if width < 1:
            raise SignalError(f"width must be >= 1, got {width}")
        if logic_delay < 0.0:
            raise SignalError(f"logic_delay must be >= 0, got {logic_delay}")
        self.width = width
        self.logic_delay = logic_delay

    def resolve(
        self,
        placements: Sequence[Tuple[float, int]],
    ) -> AsyncSettleResult:
        """Settle a contention among agents placed along the bus.

        Parameters
        ----------
        placements:
            ``(position, identity)`` pairs; positions in [0, 1].

        Raises
        ------
        SignalError
            On invalid positions, identity 0 or identities over width.
        ArbitrationError
            On duplicate identities or a non-quiescing run (impossible
            for the withdraw/reapply rule; kept as a model invariant).
        """
        agents: List[Tuple[float, int]] = []
        for position, identity in placements:
            if not 0.0 <= position <= 1.0:
                raise SignalError(f"position {position} outside [0, 1]")
            if identity == 0:
                raise SignalError("identity 0 is reserved for 'nobody competed'")
            if identity >= (1 << self.width):
                raise SignalError(
                    f"identity {identity} does not fit in {self.width} bits"
                )
            agents.append((float(position), identity))
        if len({identity for __, identity in agents}) != len(agents):
            raise ArbitrationError("identities must be unique")
        if not agents:
            return AsyncSettleResult(0, 0.0, 0.0, 0)

        count = len(agents)
        positions = [position for position, __ in agents]
        identities = [identity for __, identity in agents]
        # Pattern-change history per agent: (time, applied) pairs, in
        # time order.  Everyone applies its full identity at t = 0.
        history: List[List[Tuple[float, int]]] = [
            [(0.0, identity)] for identity in identities
        ]
        delay = [
            [abs(positions[i] - positions[j]) for j in range(count)]
            for i in range(count)
        ]

        sequence = itertools.count()
        queue: List[Tuple[float, int, int]] = []
        for i in range(count):
            for j in range(count):
                if i != j:
                    heapq.heappush(
                        queue,
                        (delay[i][j] + self.logic_delay, next(sequence), i),
                    )
        # Observers of an agent's own change: itself, immediately.
        for i in range(count):
            heapq.heappush(queue, (self.logic_delay, next(sequence), i))

        changes = 0
        last_change_time = 0.0
        events = 0
        while queue:
            events += 1
            if events > _MAX_EVENTS:
                raise ArbitrationError(
                    "asynchronous settle failed to quiesce; model invariant broken"
                )
            time, __, observer = heapq.heappop(queue)
            observed = 0
            for j in range(count):
                observed |= self._pattern_at(history[j], time - delay[observer][j])
            new_pattern = applied_pattern(
                identities[observer], observed, self.width
            )
            if new_pattern == history[observer][-1][1]:
                continue
            history[observer].append((time, new_pattern))
            changes += 1
            last_change_time = max(last_change_time, time)
            for j in range(count):
                notify_at = time + (delay[observer][j] if j != observer else 0.0)
                heapq.heappush(
                    queue,
                    (notify_at + self.logic_delay, next(sequence), j),
                )

        final_word = 0
        for agent_history in history:
            final_word |= agent_history[-1][1]
        expected = max(identities)
        if final_word != expected:
            raise ArbitrationError(
                f"asynchronous settle converged to {final_word}, "
                f"expected max identity {expected}"
            )
        # The bus agrees once the last change has propagated end to end
        # past every agent.
        spread = max(
            max(delay[i]) if count > 1 else 0.0 for i in range(count)
        )
        return AsyncSettleResult(
            winner_identity=final_word,
            settle_time=last_change_time + spread,
            last_change_time=last_change_time,
            pattern_changes=changes,
        )

    #: Absolute slack when reading pattern history: observation events
    #: are scheduled at exactly ``change_time + delay``, and recovering
    #: ``change_time`` as ``event_time - delay`` can land one float ulp
    #: early.  Without the slack the observer reads the stale pattern,
    #: never re-evaluates, and the settle wedges one withdraw short of
    #: the maximum.  Real position/time differences are many orders of
    #: magnitude above 1e-9.
    _TIME_SLACK = 1e-9

    @classmethod
    def _pattern_at(cls, agent_history: List[Tuple[float, int]], time: float) -> int:
        """The pattern an agent was applying at a (possibly past) time.

        Before t = 0 nothing is applied (the arbitration has not
        started from the observer's point of view).
        """
        if time < -cls._TIME_SLACK:
            return 0
        applied = 0
        for change_time, pattern in agent_history:
            if change_time <= time + cls._TIME_SLACK:
                applied = pattern
            else:
                break
        return applied

"""Behavioural model of binary-patterned arbitration lines [John83].

Johnson's synchronous bus arbiter (U.S. patent 4,375,639) recodes the
arbitration lines so a contention resolves in a *single* end-to-end bus
propagation, at the cost of comparison logic in each agent and — the
property the paper leans on in §3.1 — the winner's identity is **not**
observable on the bus: each agent only learns whether *it* won.

The recoding replaces each binary bit with a pattern such that one
propagation suffices; the details of the patent's line coding do not
affect any protocol-visible behaviour, so this model captures exactly the
two externally relevant facts:

1. settle cost is one round, independent of the identity width;
2. the public outcome is per-agent win/lose, never the winner's number.

The paper's RR protocol therefore cannot run on these lines (footnote 2
suggests broadcasting the winner on k extra lines as a remedy, which
:class:`BinaryPatternedArbitration` optionally models), while the *static*
part of the FCFS identities can use them to claw back the wider-identity
overhead (§3.2, footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.errors import ArbitrationError, SignalError

__all__ = ["BinaryPatternedArbitration", "PatternedOutcome"]


@dataclass(frozen=True)
class PatternedOutcome:
    """Result of a binary-patterned contention.

    ``won`` maps each competing driver to whether it won.  ``winner_identity``
    is ``None`` unless the arbiter was built with ``broadcast_winner=True``
    (the extra-k-lines variant of the paper's footnote 2).
    """

    won: Dict[int, bool]
    rounds: int
    winner_identity: Optional[int]


class BinaryPatternedArbitration:
    """Single-propagation maximum finding with hidden winner identity.

    Parameters
    ----------
    width:
        Identity width in bits (for capacity checking only).
    broadcast_winner:
        Model the optional extra k lines that broadcast the winning
        identity; adds one more propagation round for the broadcast.
    """

    def __init__(self, width: int, broadcast_winner: bool = False) -> None:
        if width < 1:
            raise SignalError(f"width must be >= 1, got {width}")
        self.width = width
        self.broadcast_winner = broadcast_winner

    @property
    def capacity(self) -> int:
        """Largest identity representable."""
        return (1 << self.width) - 1

    def resolve(self, identities: Iterable[int]) -> PatternedOutcome:
        """Resolve a contention in one propagation round.

        Raises
        ------
        SignalError
            On identity 0 or identities wider than ``width``.
        ArbitrationError
            On duplicate identities.
        """
        by_driver: Dict[int, int] = {}
        for driver, identity in enumerate(identities):
            if identity == 0:
                raise SignalError("identity 0 is reserved for 'nobody competed'")
            if identity > self.capacity:
                raise SignalError(
                    f"identity {identity} exceeds capacity {self.capacity}"
                )
            by_driver[driver] = identity
        if len(set(by_driver.values())) != len(by_driver):
            raise ArbitrationError("identities must be unique")
        if not by_driver:
            return PatternedOutcome(won={}, rounds=0, winner_identity=None)
        winning = max(by_driver.values())
        won = {driver: identity == winning for driver, identity in by_driver.items()}
        rounds = 2 if self.broadcast_winner else 1
        winner_identity = winning if self.broadcast_winner else None
        return PatternedOutcome(won=won, rounds=rounds, winner_identity=winner_identity)

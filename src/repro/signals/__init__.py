"""Bus-signal substrate: wired-OR lines and the parallel contention arbiter.

The protocols of the paper run on a backplane bus whose arbitration lines
carry the *wired-OR* of the signals applied by all agents.  This subpackage
models that hardware layer:

- :class:`~repro.signals.wired_or.WiredOrLine` — a single open-collector
  line whose value is the OR of every driver;
- :class:`~repro.signals.lines.ArbitrationLineBundle` — the k arbitration
  lines carrying the bits of the competing arbitration numbers;
- :mod:`~repro.signals.contention` — the bit-withdrawal/reapply settle
  process of the parallel contention arbiter [Taub84], iterated in
  synchronous bus-propagation rounds until the lines carry the maximum
  competing arbitration number;
- :mod:`~repro.signals.binary_patterned` — a behavioural model of
  Johnson's binary-patterned arbitration lines [John83], which settle in a
  single propagation round but do not expose the winner's identity on the
  bus.

The system-level simulator of :mod:`repro.bus` abstracts arbitration to a
constant 0.5-unit overhead, exactly as the paper's evaluation does; this
layer exists so the maximum-finding behaviour the protocols *rely on* is a
verified, executable artifact rather than an assumption, and so the settle
round counts can be studied (see ``benchmarks/test_ablation_settle.py``).
"""

from repro.signals.async_settle import AsyncContention, AsyncSettleResult
from repro.signals.binary_patterned import BinaryPatternedArbitration
from repro.signals.contention import ContentionResult, ParallelContention
from repro.signals.lines import ArbitrationLineBundle
from repro.signals.wired_or import WiredOrLine

__all__ = [
    "WiredOrLine",
    "ArbitrationLineBundle",
    "ParallelContention",
    "ContentionResult",
    "AsyncContention",
    "AsyncSettleResult",
    "BinaryPatternedArbitration",
]

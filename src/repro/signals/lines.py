"""The bundle of k arbitration lines.

The parallel contention arbiter needs ``k = ceil(log2(N + 1))`` wired-OR
lines to arbitrate among up to ``N`` agents with identities ``1..N``
(identity 0 is reserved: an all-zero result means "nobody competed").
Line ``i`` carries bit ``i`` of the OR of all applied arbitration numbers.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.errors import SignalError
from repro.signals.wired_or import WiredOrLine

__all__ = ["ArbitrationLineBundle", "lines_required"]


def lines_required(num_agents: int) -> int:
    """Number of arbitration lines for ``num_agents`` devices.

    This is the paper's ``ceil(log2(N + 1))``: identities run ``1..N`` so
    ``N + 1`` distinct codes (including the reserved all-zero) must fit.
    """
    if num_agents < 1:
        raise SignalError(f"need at least one agent, got {num_agents}")
    return max(1, math.ceil(math.log2(num_agents + 1)))


class ArbitrationLineBundle:
    """``width`` wired-OR lines treated as one binary word.

    Agents apply (partial) arbitration numbers; the bundle reports the
    wired-OR word observed on the bus.  The settle dynamics live in
    :class:`~repro.signals.contention.ParallelContention`; this class is
    only the passive medium.
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise SignalError(f"line bundle width must be >= 1, got {width}")
        self.width = width
        self.lines: List[WiredOrLine] = [WiredOrLine(f"arb[{i}]") for i in range(width)]
        self._applied: Dict[int, int] = {}

    @property
    def capacity(self) -> int:
        """Largest arbitration number representable on this bundle."""
        return (1 << self.width) - 1

    def apply(self, driver: int, value: int) -> None:
        """Driver applies ``value``: asserts lines where bits are 1.

        Replaces whatever pattern the driver previously applied; applying
        0 is equivalent to :meth:`withdraw`.
        """
        if value < 0 or value > self.capacity:
            raise SignalError(
                f"value {value} does not fit on {self.width} arbitration lines"
            )
        previous = self._applied.get(driver, 0)
        for bit in range(self.width):
            mask = 1 << bit
            if value & mask and not previous & mask:
                self.lines[bit].assert_(driver)
            elif previous & mask and not value & mask:
                self.lines[bit].release(driver)
        if value:
            self._applied[driver] = value
        else:
            self._applied.pop(driver, None)

    def withdraw(self, driver: int) -> None:
        """Driver stops driving every line."""
        self.apply(driver, 0)

    def applied_by(self, driver: int) -> int:
        """The pattern ``driver`` is currently applying (0 if none)."""
        return self._applied.get(driver, 0)

    def observed(self) -> int:
        """The wired-OR word currently visible on the bus."""
        word = 0
        for bit, line in enumerate(self.lines):
            if line.value:
                word |= 1 << bit
        return word

    def clear(self) -> None:
        """Remove every driver from every line."""
        for line in self.lines:
            line.clear()
        self._applied.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArbitrationLineBundle(width={self.width}, observed={self.observed():b})"

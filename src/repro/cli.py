"""Command-line interface: ``repro-arb`` / ``python -m repro``.

Subcommands regenerate the paper's tables and figure, or run a single
ad-hoc simulation::

    repro-arb table 4.1              # 4.1-4.5, or extension tables E1-E5
    repro-arb figure 4.1
    repro-arb all                    # everything, in order
    repro-arb run --protocol rr --agents 30 --load 1.5
    repro-arb compare --protocols rr fcfs aap1   # side by side, same seed
    repro-arb faults                 # robustness grid (fault rate x protocol)
    repro-arb trace --protocol rr    # JSONL arbitration-event trace to stdout
    repro-arb metrics --protocol rr  # counters + histograms for one run
    repro-arb protocols              # list registered protocols
    repro-arb --list-protocols       # ditto, without a subcommand

Fidelity is controlled by ``--scale`` or the ``REPRO_SCALE`` environment
variable (smoke / quick / default / paper).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments import SimulationSettings
from repro.experiments import (
    extensions,
    figure_4_1,
    robustness,
    table_4_1,
    table_4_2,
    table_4_3,
    table_4_4,
    table_4_5,
)
from repro.experiments.cache import ResultCache
from repro.experiments.formatting import fmt_estimate
from repro.experiments.params import DEFAULT_SEED
from repro.experiments.scale import SCALES, current_scale
from repro.observability import TelemetrySettings, render_metrics
from repro.protocols.registry import get_spec, protocol_names
from repro.session import Session
from repro.workload.arrivals import bursty_equal_load
from repro.workload.scenarios import ScenarioSpec, equal_load, open_loop_equal_load

__all__ = ["main", "build_parser", "render_protocol_listing"]

_TABLES = {
    "4.1": table_4_1,
    "4.2": table_4_2,
    "4.3": table_4_3,
    "4.4": table_4_4,
    "4.5": table_4_5,
}

#: Extension tables (beyond the paper): name -> callable(scale, seed, executor).
_EXTENSION_TABLES = {
    "E1": lambda scale, seed, executor: extensions.run_table_e1(),
    "E2": lambda scale, seed, executor: extensions.run_table_e2(seed=seed),
    "E3": lambda scale, seed, executor: extensions.run_table_e3(
        scale=scale, seed=seed, executor=executor
    ),
    "E4": lambda scale, seed, executor: extensions.run_table_e4(
        scale=scale, seed=seed, executor=executor
    ),
    "E5": lambda scale, seed, executor: extensions.run_table_e5(
        scale=scale, seed=seed, executor=executor
    ),
}


def _add_workload_options(cmd: argparse.ArgumentParser) -> None:
    """The ad-hoc workload vocabulary shared by run/trace/metrics/compare.

    ``--arrival closed`` (the default) keeps the paper's §4.1 think-time
    loop; ``poisson`` and ``bursty`` are open-loop arrival processes, so
    their ``--load`` is a true arrival-rate load and must stay below 1.
    ``--urgent-fraction`` overlays the §5 two-class split on any of them.
    """
    cmd.add_argument(
        "--arrival",
        choices=("closed", "poisson", "bursty"),
        default="closed",
        help="arrival model: closed think-time loop (default), open-loop "
        "Poisson, or open-loop on-off bursty (MMPP) sources",
    )
    cmd.add_argument(
        "--urgent-fraction",
        type=float,
        default=0.0,
        metavar="P",
        help="probability a request is urgent-class (the §5 priority overlay)",
    )
    cmd.add_argument(
        "--outstanding",
        type=int,
        default=1,
        metavar="R",
        help="outstanding requests per open-loop agent (r of §3.2; "
        "needs a protocol with r > 1 support)",
    )
    cmd.add_argument(
        "--burst-on",
        type=float,
        default=0.5,
        metavar="F",
        help="bursty arrivals: fraction of a cycle spent in the on phase",
    )
    cmd.add_argument(
        "--burst-cycle",
        type=float,
        default=20.0,
        metavar="T",
        help="bursty arrivals: mean on+off cycle length (transaction times)",
    )


def _with_urgent(scenario: ScenarioSpec, fraction: float) -> ScenarioSpec:
    """Overlay a two-class split on an existing population."""
    if fraction <= 0.0:
        return scenario
    from dataclasses import replace

    return ScenarioSpec(
        name=f"{scenario.name}-u{fraction:g}",
        agents=tuple(
            replace(agent, priority_fraction=fraction) for agent in scenario.agents
        ),
        notes=scenario.notes,
    )


def _cli_scenario(args) -> ScenarioSpec:
    """Build the ad-hoc scenario the workload options describe."""
    arrival = getattr(args, "arrival", "closed")
    if arrival == "poisson":
        scenario = open_loop_equal_load(
            args.agents, args.load, cv=args.cv, max_outstanding=args.outstanding
        )
    elif arrival == "bursty":
        scenario = bursty_equal_load(
            args.agents,
            args.load,
            on_fraction=args.burst_on,
            cycle_time=args.burst_cycle,
            max_outstanding=args.outstanding,
        )
    else:
        scenario = equal_load(args.agents, args.load, cv=args.cv)
    return _with_urgent(scenario, getattr(args, "urgent_fraction", 0.0))


def render_protocol_listing() -> str:
    """The registry as a capability table (``protocols`` / --list-protocols).

    Everything shown is declared on the :class:`ProtocolSpec`, not probed
    from an instance: name, paper section, extra bus lines, r > 1
    support, and the one-line summary.
    """
    header = f"{'protocol':14s} {'section':9s} {'lines':>5s} {'r>1':>4s}  summary"
    rows = [header, "-" * len(header)]
    for name in protocol_names():
        spec = get_spec(name)
        extra = "?" if spec.extra_lines is None else str(spec.extra_lines)
        section = spec.paper_section or "-"
        rows.append(
            f"{name:14s} {section:9s} {extra:>5s} "
            f"{'yes' if spec.supports_outstanding else 'no':>4s}  {spec.summary}"
        )
    return "\n".join(rows)


class _ListProtocolsAction(argparse.Action):
    """Print the protocol listing and exit, like ``--help``.

    Implemented as an action so it works without a subcommand while the
    subparsers stay ``required=True``.
    """

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "list registered protocols and exit")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(render_protocol_listing())
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-arb",
        description=(
            "Reproduce Vernon & Manber (ISCA 1988): distributed RR and "
            "FCFS bus-arbitration protocols."
        ),
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="run length (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="master random seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for table/figure sweeps (0 = one per core; "
            "default: $REPRO_JOBS or 1 = serial); results are identical "
            "for any worker count"
        ),
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse cached simulation results ($REPRO_CACHE_DIR or ~/.cache/repro-arb)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="cache results under PATH (implies --cache)",
    )
    parser.add_argument(
        "--engine",
        choices=("event", "batch"),
        default=None,
        help=(
            "execution engine override: 'batch' (the lockstep lane engine, "
            "the library default inside its conformance-verified domain) or "
            "'event' (the general event-driven simulator).  Omitted, every "
            "cell keeps its own declaration; either choice overrides all "
            "cells, and cells outside the batch domain fall back to 'event' "
            "transparently"
        ),
    )
    parser.add_argument("--list-protocols", action=_ListProtocolsAction)
    subparsers = parser.add_subparsers(dest="command", required=True)

    table_cmd = subparsers.add_parser(
        "table", help="regenerate one table (paper 4.x or extension Ex)"
    )
    table_cmd.add_argument(
        "number",
        choices=sorted(_TABLES) + sorted(_EXTENSION_TABLES),
        help="table number",
    )

    figure_cmd = subparsers.add_parser("figure", help="regenerate Figure 4.1")
    figure_cmd.add_argument(
        "number", choices=["4.1"], nargs="?", default="4.1", help="figure number"
    )
    figure_cmd.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="also write the CDF series as CSV for external plotting",
    )

    subparsers.add_parser("all", help="regenerate every table and the figure")
    subparsers.add_parser("protocols", help="list registered protocols")

    faults_cmd = subparsers.add_parser(
        "faults",
        help="run the robustness grid: fault rate x protocol, with watchdog",
    )
    faults_cmd.add_argument(
        "--protocols",
        nargs="+",
        choices=protocol_names(),
        default=list(robustness.ROBUSTNESS_PROTOCOLS),
        help="protocols to inject faults into (must declare fault capabilities)",
    )
    faults_cmd.add_argument(
        "--rates",
        nargs="+",
        type=float,
        default=list(robustness.DEFAULT_FAULT_RATES),
        metavar="RATE",
        help="fault rates (faults per unit simulated time) to sweep",
    )
    faults_cmd.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "run every fault cell with the metrics registry on and print "
            "an aggregated telemetry summary after each panel"
        ),
    )
    faults_cmd.add_argument(
        "--workload",
        choices=robustness.GRID_WORKLOADS,
        default="closed",
        help="grid population: the saturated closed loop (default), "
        "open-loop Poisson, on-off bursty (MMPP), or two-class priority",
    )

    trace_cmd = subparsers.add_parser(
        "trace",
        help="emit one run's arbitration events as JSON lines",
    )
    trace_cmd.add_argument(
        "--protocol", choices=protocol_names(), default="rr", help="arbiter"
    )
    trace_cmd.add_argument("--agents", type=int, default=10, help="number of agents")
    trace_cmd.add_argument(
        "--load", type=float, default=1.5, help="total offered load"
    )
    trace_cmd.add_argument(
        "--cv", type=float, default=1.0, help="inter-request time CV"
    )
    trace_cmd.add_argument(
        "--out",
        metavar="PATH",
        default="-",
        help="trace destination ('-' = stdout, the default)",
    )
    _add_workload_options(trace_cmd)

    metrics_cmd = subparsers.add_parser(
        "metrics",
        help="run one simulation and print its telemetry counters/histograms",
    )
    metrics_cmd.add_argument(
        "--protocol", choices=protocol_names(), default="rr", help="arbiter"
    )
    metrics_cmd.add_argument("--agents", type=int, default=10, help="number of agents")
    metrics_cmd.add_argument(
        "--load", type=float, default=1.5, help="total offered load"
    )
    metrics_cmd.add_argument(
        "--cv", type=float, default=1.0, help="inter-request time CV"
    )
    _add_workload_options(metrics_cmd)

    run_cmd = subparsers.add_parser("run", help="run one ad-hoc simulation")
    run_cmd.add_argument(
        "--protocol", choices=protocol_names(), default="rr", help="arbiter"
    )
    run_cmd.add_argument("--agents", type=int, default=10, help="number of agents")
    run_cmd.add_argument(
        "--load", type=float, default=1.5, help="total offered load"
    )
    run_cmd.add_argument(
        "--cv", type=float, default=1.0, help="inter-request time CV"
    )
    _add_workload_options(run_cmd)

    compare_cmd = subparsers.add_parser(
        "compare", help="run several protocols on one workload, side by side"
    )
    compare_cmd.add_argument(
        "--protocols",
        nargs="+",
        choices=protocol_names(),
        default=["rr", "fcfs", "aap1", "aap2"],
        help="arbiters to compare (same seed: identical arrivals)",
    )
    compare_cmd.add_argument("--agents", type=int, default=10)
    compare_cmd.add_argument("--load", type=float, default=2.0)
    compare_cmd.add_argument("--cv", type=float, default=1.0)
    _add_workload_options(compare_cmd)

    serve_cmd = subparsers.add_parser(
        "serve",
        help="run the arbitration service on a local socket (see docs/service.md)",
    )
    serve_cmd.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="listen socket ($REPRO_SERVICE_SOCKET or the temp-dir default)",
    )
    serve_cmd.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="admission queue capacity; beyond it submissions are rejected "
        "with a retry-after hint (backpressure, never unbounded buffering)",
    )
    serve_cmd.add_argument(
        "--shards", type=int, default=2, metavar="N", help="process-pool shards"
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=1, metavar="N", help="workers per shard"
    )
    serve_cmd.add_argument(
        "--serial",
        action="store_true",
        help="execute in-process instead of on process pools",
    )
    serve_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job wall-clock deadline (jobs may override)",
    )
    serve_cmd.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="default per-job cell budget (larger jobs are rejected)",
    )
    serve_cmd.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="stream service lifecycle telemetry as JSON lines to PATH",
    )

    submit_cmd = subparsers.add_parser(
        "submit", help="submit one job to a running service and await it"
    )
    submit_cmd.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="service socket ($REPRO_SERVICE_SOCKET or the temp-dir default)",
    )
    submit_cmd.add_argument(
        "--protocols",
        nargs="+",
        choices=protocol_names(),
        default=["rr"],
        help="one cell per protocol, all on the same workload",
    )
    submit_cmd.add_argument("--agents", type=int, default=10)
    submit_cmd.add_argument("--load", type=float, default=1.5)
    submit_cmd.add_argument("--cv", type=float, default=1.0)
    submit_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock deadline",
    )
    submit_cmd.add_argument("--tag", default=None, help="free-form job label")
    submit_cmd.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id after admission instead of awaiting results",
    )
    return parser


def _make_session(args) -> Session:
    """One session per invocation: every subcommand routes through it.

    ``--jobs``, ``--cache``/``--cache-dir`` and ``--engine`` configure
    the session's executor backend; ``engine=None`` respects each
    cell's own declaration, while an explicit ``--engine`` (validated
    by argparse against the known engines) overrides every cell,
    reaching the grids that build their settings internally.
    """
    cache = None
    if args.cache or args.cache_dir:
        cache = ResultCache(args.cache_dir)
    return Session(jobs=args.jobs, cache=cache, engine=args.engine)


def _run_settings(args, scale, **extra) -> SimulationSettings:
    """Ad-hoc run settings for the run/compare/trace/metrics commands.

    The engine is *not* set here: the session's ``--engine`` override
    applies uniformly at plan time, so ad-hoc runs and grid sweeps
    resolve their engine in exactly one place.
    """
    return SimulationSettings(
        batches=scale.batches,
        batch_size=scale.batch_size,
        warmup=scale.warmup,
        seed=args.seed,
        **extra,
    )


def _emit_tables(module, scale, seed, executor) -> None:
    for panel in module.run(scale=scale, seed=seed, executor=executor):
        print(panel.render())
        print()


def _run_compare(args, scale, session: Session) -> None:
    from repro.errors import StatisticsError

    scenario = _cli_scenario(args)
    settings = _run_settings(args, scale)
    print(f"scenario: {scenario.notes}  (seed {args.seed}, scale {scale.name})")
    print(
        f"{'protocol':14s} {'λ':>6s} {'mean W':>14s} {'std W':>14s} "
        f"{'t_N/t_1':>16s}"
    )
    for protocol in args.protocols:
        session.submit(scenario, protocol, settings, tag=f"compare/{protocol}")
    outcomes = session.gather()
    for protocol, outcome in zip(args.protocols, outcomes):
        result = outcome.result
        try:
            fairness = fmt_estimate(result.extreme_throughput_ratio())
        except StatisticsError:
            fairness = "starved"
        print(
            f"{protocol:14s} {result.system_throughput().mean:6.2f} "
            f"{fmt_estimate(result.mean_waiting()):>14s} "
            f"{fmt_estimate(result.std_waiting()):>14s} "
            f"{fairness:>16s}"
        )


def _run_trace(args, scale, session: Session) -> None:
    """``trace``: stream one run's arbitration events as JSON lines.

    The trace goes through the run's own :class:`JsonlSink` (via
    ``telemetry.jsonl_path``), so the bytes written here are exactly the
    bytes the golden-trace suite pins down.
    """
    scenario = _cli_scenario(args)
    settings = _run_settings(
        args, scale, telemetry=TelemetrySettings(events=True, jsonl_path=args.out)
    )
    result = session.simulate(scenario, args.protocol, settings)
    if args.out != "-":
        count = len(result.events) if result.events is not None else 0
        print(f"{count} arbitration events written to {args.out}")


def _run_metrics(args, scale, session: Session) -> None:
    """``metrics``: one run's telemetry counters and histograms.

    Flow scenarios (open-loop arrivals or a priority class) additionally
    report the fairness block: Jain indices, per-class waiting-time
    percentiles and per-flow service shares.  Closed-loop output is
    byte-identical to what it was before the fairness layer existed.
    """
    from repro.analysis.fairness import fairness_report, render_fairness

    scenario = _cli_scenario(args)
    settings = _run_settings(
        args,
        scale,
        telemetry=TelemetrySettings(metrics=True),
        keep_records=any(
            agent.open_loop or agent.priority_fraction > 0.0
            for agent in scenario.agents
        ),
    )
    result = session.simulate(scenario, args.protocol, settings)
    print(
        f"protocol {args.protocol} on {scenario.name} "
        f"(seed {args.seed}, scale {scale.name})"
    )
    assert result.metrics is not None
    print(render_metrics(result.metrics))
    report = fairness_report(result)
    if report["jain_flows"] is not None:
        print()
        print(render_fairness(report))


def _summarise_fault_metrics(table) -> Optional[str]:
    """Aggregate the per-cell metrics snapshots of one robustness panel."""
    totals: dict = {}
    for record in table.data:
        snapshot = record.get("metrics")
        if not snapshot:
            continue
        for name, value in snapshot["counters"].items():
            totals[name] = totals.get(name, 0) + value
    if not totals:
        return None
    body = "  ".join(f"{name}={totals[name]}" for name in sorted(totals))
    return f"telemetry totals: {body}"


def _run_serve(args) -> None:
    """``serve``: the arbitration service on a local socket, until shutdown."""
    from repro.service.server import ServiceServer, default_socket_path
    from repro.service.service import ArbitrationService, ServiceConfig

    cache = None
    if args.cache or args.cache_dir:
        cache = ResultCache(args.cache_dir)
    config = ServiceConfig(
        queue_limit=args.queue_limit,
        shards=args.shards,
        workers=args.workers,
        serial=args.serial,
        default_deadline=args.deadline,
        default_max_cells=args.max_cells,
        jsonl_path=args.events,
    )
    service = ArbitrationService(cache=cache, config=config)
    socket_path = args.socket if args.socket is not None else default_socket_path()
    mode = "serial" if args.serial else f"{args.shards}x{args.workers} workers"
    print(f"serving on {socket_path} ({mode}); stop with the 'shutdown' op")
    ServiceServer(service, socket_path).run()


def _run_submit(args, scale) -> None:
    """``submit``: one job to a running service, honouring backpressure."""
    from repro.service.client import ServiceClient
    from repro.session.request import RunRequest

    scenario = equal_load(args.agents, args.load, cv=args.cv)
    settings = _run_settings(args, scale)
    requests = [
        RunRequest(scenario, protocol, settings) for protocol in args.protocols
    ]
    with ServiceClient(args.socket) as client:
        summary = client.submit_retry(
            requests, deadline=args.deadline, tag=args.tag
        )
        if summary["state"] == "rejected":
            raise ReproError(f"job rejected: {summary.get('error')}")
        if args.no_wait:
            print(f"{summary['job_id']} {summary['state']}")
            return
        summary = client.wait(summary["job_id"])
    print(f"job {summary['job_id']}: {summary['state']}", end="")
    if summary.get("elapsed") is not None:
        print(f" in {summary['elapsed']:.3f}s", end="")
    print()
    if summary["state"] != "done":
        raise ReproError(summary.get("error") or f"job {summary['state']}")
    print(f"{'protocol':14s} {'route':>6s} {'util':>6s} {'λ':>7s} {'mean W':>8s}")
    for cell in summary.get("results", []):
        throughput = cell.get("throughput")
        waiting = cell.get("mean_waiting")
        print(
            f"{cell['protocol']:14s} {cell['route']:>6s} "
            f"{cell['utilization']:6.3f} "
            f"{throughput if throughput is None else format(throughput, '7.2f')} "
            f"{waiting if waiting is None else format(waiting, '8.2f')}"
        )


def _run_single(args, scale, session: Session) -> None:
    scenario = _cli_scenario(args)
    settings = _run_settings(args, scale)
    result = session.simulate(scenario, args.protocol, settings)
    print(f"protocol          : {args.protocol}")
    print(f"scenario          : {scenario.name}")
    print(f"bus utilisation   : {result.utilization:.3f}")
    print(f"throughput (λ)    : {fmt_estimate(result.system_throughput())}")
    print(f"mean W            : {fmt_estimate(result.mean_waiting())}")
    print(f"std W             : {fmt_estimate(result.std_waiting())}")
    print(f"t_N/t_1 fairness  : {fmt_estimate(result.extreme_throughput_ratio())}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "faults":
        # Enum-like choices (--engine, --protocols, table/figure numbers,
        # --scale) are validated by argparse; numeric flags get the same
        # treatment here so bad values exit 2 with a usage message
        # instead of surfacing mid-run.
        bad = [f"{rate:g}" for rate in args.rates if rate <= 0.0]
        if bad:
            parser.error(f"--rates must be > 0, got: {', '.join(bad)}")
    if getattr(args, "arrival", "closed") == "closed" and getattr(
        args, "outstanding", 1
    ) != 1:
        parser.error("--outstanding needs an open-loop arrival model "
                     "(--arrival poisson|bursty)")
    try:
        # Inside the try: an invalid $REPRO_SCALE raises ReproError and
        # must exit 1 with a clean message, not a traceback.
        scale = current_scale(args.scale)
        if args.command == "table":
            session = _make_session(args)
            if args.number in _EXTENSION_TABLES:
                print(
                    _EXTENSION_TABLES[args.number](scale, args.seed, session).render()
                )
                print()
            else:
                _emit_tables(_TABLES[args.number], scale, args.seed, session)
        elif args.command == "figure":
            figure = figure_4_1.run(
                scale=scale, seed=args.seed, executor=_make_session(args)
            )
            print(figure.render())
            if args.csv:
                with open(args.csv, "w", encoding="utf-8") as handle:
                    handle.write(figure.series_csv())
                print(f"(series written to {args.csv})")
        elif args.command == "all":
            session = _make_session(args)
            for number in sorted(_TABLES):
                _emit_tables(_TABLES[number], scale, args.seed, session)
            print(figure_4_1.run(scale=scale, seed=args.seed, executor=session).render())
        elif args.command == "protocols":
            print(render_protocol_listing())
        elif args.command == "faults":
            telemetry = TelemetrySettings(metrics=True) if args.metrics else None
            tables = robustness.run(
                protocols=args.protocols,
                rates=args.rates,
                scale=scale,
                seed=args.seed,
                executor=_make_session(args),
                telemetry=telemetry,
                engine=args.engine or "batch",
                workload=args.workload,
            )
            for panel in tables:
                print(panel.render())
                summary = _summarise_fault_metrics(panel)
                if summary is not None:
                    print(summary)
                print()
        elif args.command == "trace":
            _run_trace(args, scale, _make_session(args))
        elif args.command == "metrics":
            _run_metrics(args, scale, _make_session(args))
        elif args.command == "run":
            _run_single(args, scale, _make_session(args))
        elif args.command == "compare":
            _run_compare(args, scale, _make_session(args))
        elif args.command == "serve":
            _run_serve(args)
        elif args.command == "submit":
            _run_submit(args, scale)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - module runner
    sys.exit(main())

"""Analytical performance models of the closed bus system.

The paper validates its simulator against intuition in several places —
"a total offered load of 1.5–2.0 is sufficient to keep the bus 100%
utilized", the saturated waiting times of Table 4.2, the conservation
law of footnote 4.  This subpackage makes those arguments executable:

- :mod:`~repro.analysis.saturation` — exact asymptotics of the saturated
  bus (every agent served once per round of N transactions);
- :mod:`~repro.analysis.mva` — exact Mean Value Analysis of the closed
  machine-repairman model (N stalling processors sharing one bus), used
  as an independent cross-check on the simulator at all loads.

The MVA model assumes exponential service when the paper's is
deterministic, so it is a close approximation rather than ground truth
away from the asymptotes; the saturation formulas are exact for any
work-conserving arbiter.  The test suite holds the simulator to both.
"""

from repro.analysis.batching import (
    aap1_extreme_ratio,
    aap1_miss_probabilities,
    aap1_relative_throughputs,
)
from repro.analysis.fairness import (
    class_latency_percentiles,
    fairness_report,
    flow_service_shares,
    jain_index,
    latency_percentile,
    render_fairness,
)
from repro.analysis.mva import mva_closed_bus
from repro.analysis.saturation import (
    saturated_cycle_time,
    saturated_mean_waiting,
    saturated_per_agent_throughput,
    saturation_load_threshold,
)

__all__ = [
    "saturated_cycle_time",
    "saturated_mean_waiting",
    "saturated_per_agent_throughput",
    "saturation_load_threshold",
    "mva_closed_bus",
    "aap1_miss_probabilities",
    "aap1_relative_throughputs",
    "aap1_extreme_ratio",
    "jain_index",
    "latency_percentile",
    "class_latency_percentiles",
    "flow_service_shares",
    "fairness_report",
    "render_fairness",
]

"""Exact asymptotics of the saturated shared bus.

When every agent has a request outstanding or in the making faster than
the bus can serve them, any *fair* work-conserving arbiter serves each
of the N agents exactly once per "round" of N back-to-back transactions
(arbitration is fully overlapped, §4.1).  Everything else follows:

- cycle time per agent  = N * S            (S = transaction time)
- waiting time W (issue → completion) = N*S − R̄   (R̄ = mean think time)
- per-agent throughput  = 1 / (N * S)

These reproduce the heavy-load W columns of Table 4.2 exactly — e.g. 30
agents at load 7.5 have R̄ = 3 and W = 30 − 3 = 27, the table's value —
and give the theoretical anchors the test suite holds the simulator to.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "saturated_cycle_time",
    "saturated_mean_waiting",
    "saturated_per_agent_throughput",
    "saturation_load_threshold",
]


def _validate(num_agents: int, transaction_time: float) -> None:
    if num_agents < 1:
        raise ConfigurationError(f"num_agents must be >= 1, got {num_agents}")
    if transaction_time <= 0.0:
        raise ConfigurationError(
            f"transaction_time must be positive, got {transaction_time}"
        )


def saturated_cycle_time(num_agents: int, transaction_time: float = 1.0) -> float:
    """Time between successive services of one agent on a saturated bus."""
    _validate(num_agents, transaction_time)
    return num_agents * transaction_time


def saturated_mean_waiting(
    num_agents: int,
    mean_think_time: float,
    transaction_time: float = 1.0,
) -> float:
    """Mean W (issue → completion) on a saturated fair bus.

    The agent's closed-loop cycle is think + W = N·S, so W = N·S − R̄.
    Raises if the think time is too long for the bus to be saturated by
    this population (the formula would go negative).
    """
    _validate(num_agents, transaction_time)
    if mean_think_time < 0.0:
        raise ConfigurationError(
            f"mean_think_time must be >= 0, got {mean_think_time}"
        )
    waiting = num_agents * transaction_time - mean_think_time
    if waiting < transaction_time:
        raise ConfigurationError(
            f"think time {mean_think_time} cannot saturate a bus of "
            f"{num_agents} agents (W would be {waiting})"
        )
    return waiting


def saturated_per_agent_throughput(
    num_agents: int, transaction_time: float = 1.0
) -> float:
    """Transactions per unit time per agent on a saturated fair bus."""
    _validate(num_agents, transaction_time)
    return 1.0 / (num_agents * transaction_time)


def saturation_load_threshold() -> float:
    """Total offered load above which the bus is effectively saturated.

    The paper's rule of thumb (§4.1): "a total offered load of 1.5–2.0
    is sufficient to keep the bus 100% utilized, even with variable
    interrequest times."  We return the conservative end.
    """
    return 2.0

"""Analytical model of the batching assured-access protocol's unfairness.

§2.3 reports the AAP unfairness as a measured fact (up to 100% more
bandwidth for the favoured agent, per [VeLe88] and [KlCa86]); this
module derives the *structure* of that unfairness for the saturated bus
and validates it against the simulator.

**The saturated-batch argument.**  At saturation every agent re-requests
shortly after service, so a batch contains (nearly) all N agents and
lasts ≈ N transactions, served in descending identity order.  Agent at
descending position ``p`` (p = 0 for the highest identity) is granted
``N − 1 − p`` transactions before the batch ends.  Its next request is
issued one transaction (its own) plus one think time R after its grant.
The *next* batch forms at the current batch's end, so the agent joins
it iff

    1 + R  <  (N − 1 − p) · 1        i.e.   R < N − 2 − p.

If it misses, it waits for the batch after that: its service period is
doubled.  With miss probability ``q_p = P(R > N − 2 − p)`` the mean
service period is ``(1 + q_p)`` batches, so relative throughput is
``1 / (1 + q_p)``:

- the *lowest* identities (p near N−1) have ``q ≈ 1`` → half rate;
- the *highest* identity has ``q ≈ P(R > N − 2) ≈ 0`` → full rate;
- the extreme throughput ratio approaches exactly **2** as think times
  shrink — the paper's "as high as 100%".

One second-order effect matters enough to model: agents that miss
batches are absent from half the batches, so batches are *shorter* than
N and everyone's slack shrinks.  :func:`aap1_miss_probabilities` solves
the resulting fixed point

    q_i = P(R > (Σ_{j<i} 1/(1+q_j) − 1) · S)

by iteration; with it the model tracks the simulator within a few
percent across the whole identity range (see
``tests/test_analysis_batching.py``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.workload.distributions import Distribution

__all__ = [
    "aap1_miss_probabilities",
    "aap1_relative_throughputs",
    "aap1_extreme_ratio",
]

_FIXED_POINT_ITERATIONS = 60


def aap1_miss_probabilities(
    num_agents: int,
    think: Distribution,
    transaction_time: float = 1.0,
) -> Dict[int, float]:
    """Per-agent P(misses the next batch) on a saturated bus.

    Keyed by static identity 1..N; higher identities are served earlier
    in each batch, leaving more slack to re-request before it ends.
    Solved as the fixed point described in the module docstring.
    """
    if num_agents < 2:
        raise ConfigurationError(f"need >= 2 agents, got {num_agents}")
    if transaction_time <= 0.0:
        raise ConfigurationError(
            f"transaction_time must be positive, got {transaction_time}"
        )
    q: List[float] = [0.0] * (num_agents + 1)  # index by agent id; [0] unused
    for __ in range(_FIXED_POINT_ITERATIONS):
        updated = q[:]
        for agent_id in range(1, num_agents + 1):
            expected_below = sum(
                1.0 / (1.0 + q[j]) for j in range(1, agent_id)
            )
            slack = (expected_below - 1.0) * transaction_time
            updated[agent_id] = 1.0 if slack <= 0.0 else think.survival(slack)
        q = updated
    return {agent_id: q[agent_id] for agent_id in range(1, num_agents + 1)}


def aap1_relative_throughputs(
    num_agents: int,
    think: Distribution,
    transaction_time: float = 1.0,
) -> Dict[int, float]:
    """Per-agent throughput relative to the most-favoured agent.

    Returns ``{agent_id: share}`` with the highest identity at 1.0: an
    agent that misses every other batch sits at ≈ 0.5.
    """
    q = aap1_miss_probabilities(num_agents, think, transaction_time)
    raw = {agent_id: 1.0 / (1.0 + miss) for agent_id, miss in q.items()}
    top = raw[num_agents]
    return {agent_id: value / top for agent_id, value in raw.items()}


def aap1_extreme_ratio(
    num_agents: int,
    think: Distribution,
    transaction_time: float = 1.0,
) -> float:
    """Predicted t_N / t_1 at saturation (→ 2 as think times shrink)."""
    q = aap1_miss_probabilities(num_agents, think, transaction_time)
    return (1.0 + q[1]) / (1.0 + q[num_agents])

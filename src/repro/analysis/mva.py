"""Mean Value Analysis of the closed bus (machine-repairman) model.

The paper's system is the classical machine-repairman network: N
processors cycle between a *think* stage (infinite-server, mean R̄) and
one shared *bus* stage (single server, FCFS-equivalent for mean values
by the conservation law).  Exact MVA recursion over population n:

    W(n)  = S * (1 + Q(n-1))          bus residence (wait + service)
    X(n)  = n / (R̄ + W(n))            system throughput
    Q(n)  = X(n) * W(n)               mean bus population

MVA is exact for exponential service; the paper's service times are
deterministic, so the prediction is an approximation there — a close
one at low load (few queued requests) and exact again at saturation
(where W(n) → N·S − R̄ regardless of service-time distribution).  The
test suite uses it as an independent cross-check on the simulator.

The §4.1 arbitration overhead (0.5 units, overlapped when the bus is
busy, exposed when it is idle) is modelled by inflating the service
time of the *first* customer to arrive at an idle bus; the
``arbitration_time`` parameter folds it in via the standard
busy-period correction, which the simulator comparison validates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["MVAResult", "mva_closed_bus"]


@dataclass(frozen=True)
class MVAResult:
    """Predicted steady-state means for the closed bus model.

    Attributes
    ----------
    num_agents:
        Population size N.
    throughput:
        System throughput X (transactions per unit time).
    utilization:
        Bus utilisation X·S (excludes exposed arbitration time).
    mean_waiting:
        Mean W, request issue to transaction completion — the paper's
        waiting-time definition.
    mean_queue:
        Mean number of requests at the bus (waiting or in service).
    """

    num_agents: int
    throughput: float
    utilization: float
    mean_waiting: float
    mean_queue: float


def mva_closed_bus(
    num_agents: int,
    mean_think_time: float,
    transaction_time: float = 1.0,
    arbitration_time: float = 0.5,
) -> MVAResult:
    """Exact MVA for N closed-loop agents sharing one bus.

    Parameters mirror the simulator: think times with mean
    ``mean_think_time``, unit transactions, and an arbitration pass that
    is exposed only when the request finds the bus idle (approximated by
    weighting the arbitration time with the idle probability at each
    population step).
    """
    if num_agents < 1:
        raise ConfigurationError(f"num_agents must be >= 1, got {num_agents}")
    if mean_think_time < 0.0:
        raise ConfigurationError(
            f"mean_think_time must be >= 0, got {mean_think_time}"
        )
    if transaction_time <= 0.0:
        raise ConfigurationError(
            f"transaction_time must be positive, got {transaction_time}"
        )
    if arbitration_time < 0.0:
        raise ConfigurationError(
            f"arbitration_time must be >= 0, got {arbitration_time}"
        )

    queue = 0.0
    throughput = 0.0
    waiting = transaction_time
    utilization = 0.0
    for population in range(1, num_agents + 1):
        # A request finding the bus idle pays the arbitration latency in
        # the open; one finding it busy has it overlapped (§4.1).
        exposed_arbitration = arbitration_time * max(0.0, 1.0 - utilization)
        waiting = transaction_time * (1.0 + queue) + exposed_arbitration
        throughput = population / (mean_think_time + waiting)
        queue = throughput * waiting
        utilization = min(1.0, throughput * transaction_time)
    return MVAResult(
        num_agents=num_agents,
        throughput=throughput,
        utilization=throughput * transaction_time,
        mean_waiting=waiting,
        mean_queue=queue,
    )

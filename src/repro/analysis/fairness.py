"""Per-flow fairness metrics: Jain index, class percentiles, flow shares.

The paper argues RR and FCFS are "fair" mostly through throughput-ratio
tables (t_N / t_1).  Multi-class and open-loop traffic need the sharper
vocabulary of the NoC fairness literature (Wang et al., "Fair Packet
Scheduling in NoC"): the Jain fairness index over per-flow service
shares, and per-class latency percentiles that expose what a
fixed-priority overlay (§5) does to the normal-class tail.

A *flow* here is one (agent, class) pair — the finest stream the bus
model distinguishes.  Everything in this module is a pure function of
either recorded completions or the metrics registry, so the same
numbers come out of a live run, a cached result, or a merged grid.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

from repro.errors import StatisticsError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bus.records import CompletionRecord
    from repro.observability.metrics import MetricsRegistry
    from repro.stats.summary import RunResult

__all__ = [
    "jain_index",
    "latency_percentile",
    "class_latency_percentiles",
    "flow_service_shares",
    "fairness_report",
    "render_fairness",
]

#: The percentiles the experiment tables report (median, tail, far tail).
DEFAULT_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)

#: Class label of a request, keyed by its priority flag.
CLASS_LABELS = {False: "normal", True: "urgent"}


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1 means perfectly equal allocations; 1/n means one flow got
    everything.  Scale-free, so raw counts and normalised shares give
    the same index.
    """
    xs = [float(value) for value in values]
    if not xs:
        raise StatisticsError("Jain index needs at least one allocation")
    if any(x < 0.0 for x in xs):
        raise StatisticsError(f"allocations must be >= 0, got {xs}")
    square_of_sum = sum(xs) ** 2
    sum_of_squares = sum(x * x for x in xs)
    if sum_of_squares == 0.0:
        # All-zero allocations: every flow got the same (nothing).
        return 1.0
    return square_of_sum / (len(xs) * sum_of_squares)


def latency_percentile(samples: Sequence[float], percentile: float) -> float:
    """Nearest-rank percentile of a sample set (deterministic, exact).

    The nearest-rank definition (ceil(p/100 * n)-th order statistic)
    always returns an observed sample, so pinned expectations in tests
    and goldens are exact rather than interpolation-scheme-dependent.
    """
    if not samples:
        raise StatisticsError("percentile of an empty sample set")
    if not 0.0 < percentile <= 100.0:
        raise StatisticsError(f"percentile must be in (0, 100], got {percentile}")
    ordered = sorted(samples)
    rank = math.ceil(percentile / 100.0 * len(ordered))
    return ordered[max(0, rank - 1)]


def class_latency_percentiles(
    records: Sequence["CompletionRecord"],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> Dict[str, Dict[float, float]]:
    """Waiting-time percentiles per traffic class.

    Uses the paper's W (issue to transaction completion).  Classes with
    no completions are omitted rather than invented.
    """
    by_class: Dict[str, List[float]] = {}
    for record in records:
        by_class.setdefault(CLASS_LABELS[record.priority], []).append(
            record.waiting_time
        )
    return {
        label: {p: latency_percentile(samples, p) for p in percentiles}
        for label, samples in sorted(by_class.items())
    }


def flow_service_shares(
    records: Sequence["CompletionRecord"],
) -> Dict[Tuple[int, str], float]:
    """Each (agent, class) flow's fraction of all completions."""
    counts: Dict[Tuple[int, str], int] = {}
    for record in records:
        flow = (record.agent_id, CLASS_LABELS[record.priority])
        counts[flow] = counts.get(flow, 0) + 1
    total = sum(counts.values())
    if total == 0:
        raise StatisticsError("no completions recorded; cannot compute shares")
    return {flow: count / total for flow, count in sorted(counts.items())}


def _registry_flow_counts(registry: "MetricsRegistry") -> Dict[Tuple[int, str], int]:
    """Per-flow completion counts from the gated ``flow.share.*`` counters."""
    counts: Dict[Tuple[int, str], int] = {}
    prefix = "flow.share.agent."
    for name, counter in registry.counters().items():
        if not name.startswith(prefix):
            continue
        agent_text, _, label = name[len(prefix):].partition(".")
        counts[(int(agent_text), label)] = counter.value
    return counts


def fairness_report(
    result: "RunResult",
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> Dict[str, object]:
    """The run-level fairness summary the tables and CLI report.

    Keys:

    - ``jain_bandwidth`` — Jain index over per-agent completion shares
      (the open-loop analogue of the tables' t_N / t_1 column);
    - ``jain_flows`` — Jain index over (agent, class) flow shares, when
      per-flow data is available (recorded completions or the gated
      registry counters), else ``None``;
    - ``class_percentiles`` — per-class waiting-time percentiles, when
      completion records were retained, else ``{}``;
    - ``flow_shares`` — per-flow service shares under the same
      condition, else ``{}``.
    """
    report: Dict[str, object] = {
        "jain_bandwidth": jain_index(result.bandwidth_shares().values()),
        "jain_flows": None,
        "class_percentiles": {},
        "flow_shares": {},
    }
    records = result.collector.records
    if records:
        shares = flow_service_shares(records)
        report["flow_shares"] = shares
        report["jain_flows"] = jain_index(shares.values())
        report["class_percentiles"] = class_latency_percentiles(records, percentiles)
    elif result.metrics is not None:
        counts = _registry_flow_counts(result.metrics)
        if counts:
            total = sum(counts.values())
            report["flow_shares"] = {
                flow: count / total for flow, count in sorted(counts.items())
            }
            report["jain_flows"] = jain_index(counts.values())
    return report


def render_fairness(report: Dict[str, object]) -> str:
    """A readable fixed-width dump of :func:`fairness_report`'s output."""
    lines: List[str] = ["fairness"]
    lines.append(f"  jain(bandwidth)  {report['jain_bandwidth']:.4f}")
    if report.get("jain_flows") is not None:
        lines.append(f"  jain(flows)      {report['jain_flows']:.4f}")
    percentiles = report.get("class_percentiles") or {}
    for label, values in percentiles.items():
        cells = "  ".join(f"p{p:g}={w:.3f}" for p, w in values.items())
        lines.append(f"  wait[{label}]  {cells}")
    shares = report.get("flow_shares") or {}
    for (agent, label), share in shares.items():
        lines.append(f"  share[agent {agent}, {label}]  {share:.4f}")
    return "\n".join(lines)
